// Tests for the data substrate: scenes, renderer, vocab, grammar, datasets.
#include <algorithm>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/grammar.h"
#include "data/renderer.h"
#include "data/scene.h"
#include "data/vocab.h"

namespace yollo::data {
namespace {

TEST(SceneTest, NamesAndColorsAreConsistent) {
  EXPECT_EQ(shape_name(ShapeType::kCircle), "circle");
  EXPECT_EQ(shape_name(ShapeType::kPillar), "pillar");
  EXPECT_EQ(color_name(ColorName::kPurple), "purple");
  EXPECT_EQ(size_name(SizeClass::kLarge), "large");
  const Rgb red = color_rgb(ColorName::kRed);
  EXPECT_GT(red.r, red.g);
  EXPECT_GT(red.r, red.b);
}

TEST(SceneTest, SamplerRespectsBoundsAndOverlap) {
  Rng rng(1);
  const SceneSamplerConfig cfg = SceneSamplerConfig::refcoco_style();
  for (int trial = 0; trial < 20; ++trial) {
    const Scene scene = sample_scene(cfg, rng);
    EXPECT_GE(scene.objects.size(), 1u);
    for (size_t i = 0; i < scene.objects.size(); ++i) {
      const vision::Box& b = scene.objects[i].box;
      EXPECT_GE(b.x, 0.0f);
      EXPECT_GE(b.y, 0.0f);
      EXPECT_LE(b.x2(), static_cast<float>(cfg.width));
      EXPECT_LE(b.y2(), static_cast<float>(cfg.height));
      for (size_t j = i + 1; j < scene.objects.size(); ++j) {
        EXPECT_LE(vision::iou(b, scene.objects[j].box),
                  cfg.max_pairwise_iou + 1e-5f);
      }
    }
  }
}

TEST(SceneTest, StylePresetsDriveSameTypeCounts) {
  Rng rng(2);
  double coco_same = 0.0, cocog_same = 0.0;
  int coco_n = 0, cocog_n = 0;
  for (int i = 0; i < 60; ++i) {
    const Scene a = sample_scene(SceneSamplerConfig::refcoco_style(), rng);
    for (const SceneObject& o : a.objects) {
      coco_same += static_cast<double>(a.same_type_count(o));
      ++coco_n;
    }
    const Scene b = sample_scene(SceneSamplerConfig::refcocog_style(), rng);
    for (const SceneObject& o : b.objects) {
      cocog_same += static_cast<double>(b.same_type_count(o));
      ++cocog_n;
    }
  }
  EXPECT_GT(coco_same / coco_n, cocog_same / cocog_n)
      << "RefCOCO-style scenes must be more crowded with same-type objects";
}

TEST(RendererTest, OutputShapeAndRange) {
  Rng rng(3);
  const Scene scene = sample_scene(SceneSamplerConfig::refcoco_style(), rng);
  const Tensor img = render_scene(scene);
  EXPECT_EQ(img.shape(), (Shape{3, scene.height, scene.width}));
  EXPECT_GE(min_value(img), 0.0f);
  EXPECT_LE(max_value(img), 1.0f);
}

TEST(RendererTest, DeterministicGivenScene) {
  Rng rng(4);
  const Scene scene = sample_scene(SceneSamplerConfig::refcoco_style(), rng);
  EXPECT_TRUE(allclose(render_scene(scene), render_scene(scene)));
}

TEST(RendererTest, ObjectPixelsCarryObjectColor) {
  Scene scene;
  scene.width = 32;
  scene.height = 32;
  SceneObject obj;
  obj.shape = ShapeType::kSquare;
  obj.color = ColorName::kRed;
  obj.box = vision::Box{8, 8, 12, 12};
  scene.objects.push_back(obj);
  const Tensor img = render_scene(scene);
  // Centre pixel of the square is pure fill colour.
  const Rgb red = color_rgb(ColorName::kRed);
  EXPECT_FLOAT_EQ(img.at({0, 14, 14}), red.r);
  EXPECT_FLOAT_EQ(img.at({1, 14, 14}), red.g);
  // A corner pixel far away is background (dark).
  EXPECT_LT(img.at({0, 1, 1}), 0.3f);
}

TEST(RendererTest, SilhouettesDifferByShape) {
  SceneObject obj;
  obj.box = vision::Box{0, 0, 10, 10};
  obj.shape = ShapeType::kCircle;
  EXPECT_TRUE(point_in_object(obj, 5, 5));
  EXPECT_FALSE(point_in_object(obj, 0.5f, 0.5f));  // circle misses corner
  obj.shape = ShapeType::kSquare;
  EXPECT_TRUE(point_in_object(obj, 0.5f, 0.5f));   // square fills corner
  obj.shape = ShapeType::kRing;
  EXPECT_FALSE(point_in_object(obj, 5, 5));        // ring has a hole
  obj.shape = ShapeType::kTriangle;
  EXPECT_FALSE(point_in_object(obj, 1, 1));        // apex region empty
  EXPECT_TRUE(point_in_object(obj, 5, 9));         // base filled
}

TEST(VocabTest, PadUnkReserved) {
  Vocab v;
  EXPECT_EQ(v.id("<pad>"), Vocab::kPad);
  EXPECT_EQ(v.id("<unk>"), Vocab::kUnk);
  EXPECT_EQ(v.id("nonexistent"), Vocab::kUnk);
}

TEST(VocabTest, AddIsIdempotent) {
  Vocab v;
  const int64_t a = v.add("circle");
  EXPECT_EQ(v.add("circle"), a);
  EXPECT_EQ(v.id("circle"), a);
  EXPECT_EQ(v.word(a), "circle");
}

TEST(VocabTest, WordIsBoundsCheckedOnBothSides) {
  Vocab v;
  const int64_t a = v.add("circle");
  // In-range ids, including both boundary ids, resolve normally.
  EXPECT_EQ(v.word(0), "<pad>");
  EXPECT_EQ(v.word(a), "circle");
  EXPECT_EQ(v.word(v.size() - 1), "circle");
  // Out-of-range ids on either side decode as <unk> — never UB, never a
  // throw (the serving path decodes untrusted token streams).
  EXPECT_EQ(v.word(-1), "<unk>");
  EXPECT_EQ(v.word(v.size()), "<unk>");
  EXPECT_EQ(v.word(1'000'000), "<unk>");
  // decode() inherits the same robustness.
  EXPECT_EQ(v.decode({a, v.size() + 7}), "circle <unk>");
}

TEST(VocabTest, EncodeDecodeRoundTrip) {
  Vocab v = Vocab::grounding_vocab();
  const std::string text = "the small red circle at top";
  const auto ids = v.encode(text);
  EXPECT_EQ(ids.size(), 6u);
  EXPECT_EQ(v.decode(ids), text);
  // Unknown words become <unk>.
  const auto with_unk = v.encode("red zeppelin");
  EXPECT_EQ(with_unk[1], Vocab::kUnk);
}

TEST(VocabTest, PadTo) {
  const std::vector<int64_t> ids = {5, 6, 7};
  const auto padded = pad_to(ids, 6);
  EXPECT_EQ(padded.size(), 6u);
  EXPECT_EQ(padded[3], Vocab::kPad);
  const auto truncated = pad_to(ids, 2);
  EXPECT_EQ(truncated.size(), 2u);
  EXPECT_EQ(truncated[1], 6);
}

TEST(VocabTest, GroundingVocabCoversGrammar) {
  Vocab v = Vocab::grounding_vocab();
  Rng rng(5);
  for (QueryStyle style : {QueryStyle::kRefCoco, QueryStyle::kRefCocoPlus,
                           QueryStyle::kRefCocoG}) {
    const auto corpus = sample_corpus(style, 30, rng);
    for (const std::string& q : corpus) {
      for (const int64_t id : v.encode(q)) {
        EXPECT_NE(id, Vocab::kUnk) << "OOV word in query: " << q;
      }
    }
  }
}

TEST(GrammarTest, QueriesUniquelyIdentifyTarget) {
  Rng rng(6);
  int generated = 0;
  for (int i = 0; i < 40; ++i) {
    const Scene scene =
        sample_scene(SceneSamplerConfig::refcoco_style(), rng);
    for (size_t t = 0; t < scene.objects.size(); ++t) {
      const auto q = generate_query(scene, t, QueryStyle::kRefCoco, rng);
      if (!q) continue;
      ++generated;
      // Re-parse the query's attribute words into a descriptor and verify it
      // matches only the target.
      Descriptor d;
      d.shape = scene.objects[t].shape;
      const auto toks = tokenize(*q);
      for (const std::string& tok : toks) {
        for (int c = 0; c < kNumColors; ++c) {
          if (tok == color_name(static_cast<ColorName>(c))) {
            d.color = static_cast<ColorName>(c);
          }
        }
        for (int z = 0; z < kNumSizes; ++z) {
          if (tok == size_name(static_cast<SizeClass>(z))) {
            d.size = static_cast<SizeClass>(z);
          }
        }
        if (tok == "left") d.h = HBucket::kLeft;
        if (tok == "right") d.h = HBucket::kRight;
        if (tok == "top") d.v = VBucket::kTop;
        if (tok == "bottom") d.v = VBucket::kBottom;
      }
      // The descriptor parsed back from the surface form must match the
      // target object.
      EXPECT_TRUE(matches(d, scene.objects[t], scene)) << *q;
    }
  }
  EXPECT_GT(generated, 30);
}

TEST(GrammarTest, RefCocoPlusNeverUsesLocationWords) {
  Rng rng(7);
  const std::set<std::string> location_words = {
      "left", "right", "top", "bottom", "middle", "center",
      "above", "below", "upper", "lower"};
  const auto corpus = sample_corpus(QueryStyle::kRefCocoPlus, 50, rng);
  EXPECT_GT(corpus.size(), 20u);
  for (const std::string& q : corpus) {
    for (const std::string& tok : tokenize(q)) {
      EXPECT_EQ(location_words.count(tok), 0u)
          << "location word '" << tok << "' in RefCOCO+-style query: " << q;
    }
  }
}

TEST(GrammarTest, QueryLengthsMirrorPaperOrdering) {
  // Paper §4.1: RefCOCO(+) queries average ~3.6 words, RefCOCOg ~8.4.
  Rng rng(8);
  auto avg_len = [&](QueryStyle style) {
    const auto corpus = sample_corpus(style, 60, rng);
    double total = 0.0;
    for (const auto& q : corpus) total += tokenize(q).size();
    return total / static_cast<double>(corpus.size());
  };
  const double coco = avg_len(QueryStyle::kRefCoco);
  const double cocog = avg_len(QueryStyle::kRefCocoG);
  EXPECT_LT(coco, 6.0);
  EXPECT_GT(cocog, 6.0);
  EXPECT_GT(cocog, coco + 2.0);
}

TEST(DatasetTest, BuildsSplitsWithoutImageLeakage) {
  Vocab v = Vocab::grounding_vocab();
  GroundingDataset ds(DatasetConfig::synthref(60, /*seed=*/42), v);
  EXPECT_GT(ds.train().size(), 20u);
  EXPECT_GT(ds.val().size(), 0u);
  EXPECT_GT(ds.test_a().size() + ds.test_b().size(), 0u);

  std::set<int64_t> train_imgs, other_imgs;
  for (const auto& s : ds.train()) train_imgs.insert(s.image_id);
  for (const auto& s : ds.val()) other_imgs.insert(s.image_id);
  for (const auto& s : ds.test_a()) other_imgs.insert(s.image_id);
  for (const auto& s : ds.test_b()) other_imgs.insert(s.image_id);
  for (int64_t id : train_imgs) {
    EXPECT_EQ(other_imgs.count(id), 0u) << "image " << id << " leaked";
  }
}

TEST(DatasetTest, TestAHoldsOnlyPersonAnalogue) {
  Vocab v = Vocab::grounding_vocab();
  GroundingDataset ds(DatasetConfig::synthref(80, /*seed=*/43), v);
  for (const auto& s : ds.test_a()) {
    EXPECT_EQ(s.target_shape(), ShapeType::kCircle);
  }
  for (const auto& s : ds.test_b()) {
    EXPECT_NE(s.target_shape(), ShapeType::kCircle);
  }
}

TEST(DatasetTest, SynthRefGHasNoTestSplits) {
  Vocab v = Vocab::grounding_vocab();
  GroundingDataset ds(DatasetConfig::synthrefg(40, /*seed=*/44), v);
  EXPECT_TRUE(ds.test_a().empty());
  EXPECT_TRUE(ds.test_b().empty());
  EXPECT_GT(ds.val().size(), 0u);
}

TEST(DatasetTest, DeterministicGivenSeed) {
  Vocab v = Vocab::grounding_vocab();
  GroundingDataset a(DatasetConfig::synthref(30, /*seed=*/7), v);
  GroundingDataset b(DatasetConfig::synthref(30, /*seed=*/7), v);
  ASSERT_EQ(a.train().size(), b.train().size());
  for (size_t i = 0; i < a.train().size(); ++i) {
    EXPECT_EQ(a.train()[i].query_text, b.train()[i].query_text);
    EXPECT_EQ(a.train()[i].image_id, b.train()[i].image_id);
  }
}

TEST(DatasetTest, StatsAreInternallyConsistent) {
  Vocab v = Vocab::grounding_vocab();
  GroundingDataset ds(DatasetConfig::synthref(50, /*seed=*/45), v);
  const DatasetStats st = ds.stats();
  EXPECT_EQ(st.num_queries,
            static_cast<int64_t>(ds.train().size() + ds.val().size() +
                                 ds.test_a().size() + ds.test_b().size()));
  EXPECT_LE(st.num_targets, st.num_queries);
  EXPECT_LE(st.num_images, 50);
  EXPECT_GT(st.avg_query_len, 1.0);
}

TEST(DatasetTest, BatchingCoversAllIndicesOnce) {
  Rng rng(9);
  const auto batches = make_batches(23, 8, rng);
  EXPECT_EQ(batches.size(), 3u);
  std::set<int64_t> seen;
  for (const auto& b : batches) {
    for (int64_t i : b) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), 23u);
}

TEST(DatasetTest, RenderBatchAndTokenPadding) {
  Vocab v = Vocab::grounding_vocab();
  GroundingDataset ds(DatasetConfig::synthref(20, /*seed=*/46), v);
  ASSERT_GE(ds.train().size(), 3u);
  const std::vector<int64_t> idx = {0, 1, 2};
  const Tensor batch = render_batch(ds.train(), idx);
  EXPECT_EQ(batch.shape(), (Shape{3, 3, 64, 96}));
  const auto tokens = batch_tokens(ds.train(), idx, ds.max_query_len());
  EXPECT_EQ(tokens.size(), 3u * static_cast<size_t>(ds.max_query_len()));
}

}  // namespace
}  // namespace yollo::data

// -- appended: tokenizer normalisation tests ---------------------------------
namespace yollo::data {
namespace {

TEST(VocabTest, TokenizeNormalisesCaseAndPunctuation) {
  const auto toks = tokenize("Red, Circle!  (left)");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "red");
  EXPECT_EQ(toks[1], "circle");
  EXPECT_EQ(toks[2], "left");
}

TEST(VocabTest, TokenizePurePunctuationVanishes) {
  EXPECT_TRUE(tokenize("... !! ??").empty());
  EXPECT_TRUE(tokenize("").empty());
}

TEST(VocabTest, UserTypedQueryReachesGrammarVocab) {
  Vocab v = Vocab::grounding_vocab();
  const auto ids = v.encode("The SMALL red Circle, at top!");
  for (int64_t id : ids) {
    EXPECT_NE(id, Vocab::kUnk);
  }
}

}  // namespace
}  // namespace yollo::data

// -- appended: image file writers --------------------------------------------
namespace yollo::data {
namespace {

TEST(RendererTest, PgmAndPpmHeadersAndSizes) {
  Rng rng(40);
  Tensor gray = Tensor::rand({4, 6}, rng);
  Tensor rgb = Tensor::rand({3, 4, 6}, rng);
  const std::string pgm = ::testing::TempDir() + "/t.pgm";
  const std::string ppm = ::testing::TempDir() + "/t.ppm";
  write_pgm(gray, pgm);
  write_ppm(rgb, ppm);

  std::ifstream gin(pgm, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  gin >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 6);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxv, 255);
  gin.get();  // single whitespace after header
  std::vector<char> payload(24);
  gin.read(payload.data(), 24);
  EXPECT_EQ(gin.gcount(), 24);

  std::ifstream pin(ppm, std::ios::binary);
  pin >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  pin.get();
  std::vector<char> rgb_payload(72);
  pin.read(rgb_payload.data(), 72);
  EXPECT_EQ(pin.gcount(), 72);

  EXPECT_THROW(write_pgm(rgb, pgm), std::invalid_argument);
  EXPECT_THROW(write_ppm(gray, ppm), std::invalid_argument);
}

TEST(RendererTest, DrawBoxOutlinePaintsPerimeterOnly) {
  Tensor img = Tensor::zeros({3, 10, 10});
  draw_box_outline(img, vision::Box{2, 2, 5, 5}, Rgb{1, 0, 0});
  EXPECT_FLOAT_EQ(img.at({0, 2, 2}), 1.0f);   // corner
  EXPECT_FLOAT_EQ(img.at({0, 2, 5}), 1.0f);   // top edge
  EXPECT_FLOAT_EQ(img.at({0, 7, 4}), 1.0f);   // bottom edge
  EXPECT_FLOAT_EQ(img.at({0, 4, 4}), 0.0f);   // interior untouched
}

}  // namespace
}  // namespace yollo::data

// -- appended: relational-clause geometry ------------------------------------
namespace yollo::data {
namespace {

// For SynthRefG queries with a relational clause, the stated relation must
// hold geometrically between the target and the named reference object.
TEST(GrammarTest, RelationalClausesMatchGeometry) {
  Rng rng(90);
  int checked = 0;
  for (int i = 0; i < 60 && checked < 25; ++i) {
    const Scene scene = sample_scene(SceneSamplerConfig::refcocog_style(), rng);
    for (size_t t = 0; t < scene.objects.size(); ++t) {
      const auto q = generate_query(scene, t, QueryStyle::kRefCocoG, rng);
      if (!q) continue;
      const std::string& text = *q;
      // Extract relation keyword, if any.
      struct Rel {
        const char* phrase;
        int dx;  // expected sign of target.cx - ref.cx (0 = unconstrained)
        int dy;
      };
      const Rel rels[] = {{"left of", -1, 0},
                          {"right of", +1, 0},
                          {"above", 0, -1},
                          {"below", 0, +1}};
      for (const Rel& rel : rels) {
        const size_t pos = text.find(rel.phrase);
        if (pos == std::string::npos) continue;
        // The reference noun phrase follows "the <color> <shape>" at the
        // end of the clause; find the unique object matching it.
        const std::string tail = text.substr(pos);
        const SceneObject* ref = nullptr;
        int matches_found = 0;
        for (const SceneObject& obj : scene.objects) {
          if (tail.find(color_name(obj.color) + " " + shape_name(obj.shape)) !=
              std::string::npos) {
            ++matches_found;
            ref = &obj;
          }
        }
        if (matches_found != 1 || ref == &scene.objects[t]) continue;
        ++checked;
        const float ddx = scene.objects[t].box.cx() - ref->box.cx();
        const float ddy = scene.objects[t].box.cy() - ref->box.cy();
        if (rel.dx != 0) {
          EXPECT_GT(ddx * static_cast<float>(rel.dx), 0.0f) << text;
        }
        if (rel.dy != 0) {
          EXPECT_GT(ddy * static_cast<float>(rel.dy), 0.0f) << text;
        }
      }
    }
  }
  EXPECT_GT(checked, 5) << "too few relational clauses generated to test";
}

TEST(GrammarTest, StyleNamesAreStable) {
  EXPECT_EQ(query_style_name(QueryStyle::kRefCoco), "SynthRef");
  EXPECT_EQ(query_style_name(QueryStyle::kRefCocoPlus), "SynthRef+");
  EXPECT_EQ(query_style_name(QueryStyle::kRefCocoG), "SynthRefG");
}

TEST(GrammarTest, BucketsPartitionTheCanvas) {
  Scene scene;
  scene.width = 90;
  scene.height = 60;
  SceneObject obj;
  obj.box = vision::Box{0, 0, 10, 10};  // centre (5,5): left/top
  EXPECT_EQ(h_bucket(obj, scene), HBucket::kLeft);
  EXPECT_EQ(v_bucket(obj, scene), VBucket::kTop);
  obj.box = vision::Box{40, 25, 10, 10};  // centre (45,30): middle
  EXPECT_EQ(h_bucket(obj, scene), HBucket::kCenter);
  EXPECT_EQ(v_bucket(obj, scene), VBucket::kMiddle);
  obj.box = vision::Box{75, 45, 10, 10};  // centre (80,50): right/bottom
  EXPECT_EQ(h_bucket(obj, scene), HBucket::kRight);
  EXPECT_EQ(v_bucket(obj, scene), VBucket::kBottom);
}

TEST(GrammarTest, DescriptorMatchingSemantics) {
  Scene scene;
  scene.width = 90;
  scene.height = 60;
  SceneObject a;
  a.shape = ShapeType::kCircle;
  a.color = ColorName::kRed;
  a.size = SizeClass::kSmall;
  a.box = vision::Box{5, 5, 10, 10};
  SceneObject b = a;
  b.color = ColorName::kBlue;
  b.box = vision::Box{70, 40, 10, 10};
  scene.objects = {a, b};

  Descriptor shape_only;
  shape_only.shape = ShapeType::kCircle;
  EXPECT_EQ(count_matches(shape_only, scene), 2);

  Descriptor red_circle = shape_only;
  red_circle.color = ColorName::kRed;
  EXPECT_EQ(count_matches(red_circle, scene), 1);
  EXPECT_TRUE(matches(red_circle, scene.objects[0], scene));
  EXPECT_FALSE(matches(red_circle, scene.objects[1], scene));

  Descriptor left_circle = shape_only;
  left_circle.h = HBucket::kLeft;
  EXPECT_EQ(count_matches(left_circle, scene), 1);
}

}  // namespace
}  // namespace yollo::data
