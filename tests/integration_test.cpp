// End-to-end integration tests across the whole stack: dataset -> model ->
// training -> evaluation, plus cross-component consistency checks.
#include <gtest/gtest.h>

#include "baseline/matcher.h"
#include "core/trainer.h"
#include "data/renderer.h"

namespace yollo {
namespace {

data::DatasetConfig small_dataset_config(uint64_t seed) {
  data::DatasetConfig dc = data::DatasetConfig::synthref(60, seed);
  dc.img_h = 48;
  dc.img_w = 72;
  return dc;
}

TEST(EndToEnd, ShortTrainingBeatsUntrainedModel) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(small_dataset_config(77), vocab);

  core::BuildOptions options;
  options.config.num_rel2att = 2;
  options.pretrain_embeddings = false;

  auto untrained = core::build_yollo(dataset, vocab, options);
  const auto base_preds = core::evaluate_yollo(*untrained, dataset.val());
  const double base_miou = eval::mean_iou(base_preds);

  auto model = core::build_yollo(dataset, vocab, options);
  core::TrainConfig tc;
  tc.epochs = 1000;
  tc.max_steps = 70;
  tc.batch_size = 16;
  core::train_yollo(*model, dataset.train(), tc);
  const auto preds = core::evaluate_yollo(*model, dataset.val());
  const double miou = eval::mean_iou(preds);

  EXPECT_GT(miou, base_miou)
      << "70 training steps must beat a randomly initialised model";
}

TEST(EndToEnd, AttentionLossDecreasesDuringTraining) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(small_dataset_config(78), vocab);
  core::BuildOptions options;
  options.config.num_rel2att = 2;
  options.pretrain_embeddings = false;
  auto model = core::build_yollo(dataset, vocab, options);
  core::TrainConfig tc;
  tc.epochs = 1000;
  tc.max_steps = 50;
  tc.batch_size = 16;
  tc.log_every = 1;
  const core::TrainResult result =
      core::train_yollo(*model, dataset.train(), tc);
  ASSERT_GE(result.curve.size(), 20u);
  float early = 0.0f, late = 0.0f;
  for (int i = 0; i < 5; ++i) {
    early += result.curve[static_cast<size_t>(i)].att;
    late += result.curve[result.curve.size() - 1 - static_cast<size_t>(i)].att;
  }
  EXPECT_LT(late, early);
}

TEST(EndToEnd, CrossDatasetEvaluationHandlesDifferentQueryLengths) {
  // A model trained on short-query SynthRef must evaluate cleanly on
  // long-query SynthRefG samples (tokens are padded/truncated to the
  // model's own max length) — this is what Table 2's generalisation rows
  // rely on.
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset coco(small_dataset_config(79), vocab);
  data::DatasetConfig gcfg = data::DatasetConfig::synthrefg(30, 80);
  gcfg.img_h = 48;
  gcfg.img_w = 72;
  const data::GroundingDataset cocog(gcfg, vocab);
  ASSERT_NE(coco.max_query_len(), cocog.max_query_len());

  core::BuildOptions options;
  options.config.num_rel2att = 1;
  options.pretrain_embeddings = false;
  auto model = core::build_yollo(coco, vocab, options);
  const auto preds = core::evaluate_yollo(*model, cocog.val());
  EXPECT_EQ(preds.size(), cocog.val().size());
}

TEST(EndToEnd, TwoStagePipelineImprovesWithTraining) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(small_dataset_config(81), vocab);

  baseline::ProposerConfig pcfg;
  pcfg.img_h = 48;
  pcfg.img_w = 72;
  Rng rng(5);
  baseline::RegionProposalNetwork rpn(pcfg, rng);
  const double recall_before = baseline::proposal_recall(rpn, dataset.val());
  baseline::RpnTrainConfig rtc;
  rtc.epochs = 1000;
  rtc.max_steps = 60;
  rtc.batch_size = 16;
  baseline::train_rpn(rpn, dataset.train(), rtc);
  const double recall_after = baseline::proposal_recall(rpn, dataset.val());
  EXPECT_GT(recall_after, recall_before)
      << "RPN training must raise proposal recall";
}

TEST(EndToEnd, DeterministicTrainingGivenSeeds) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(small_dataset_config(82), vocab);
  core::BuildOptions options;
  options.config.num_rel2att = 1;
  options.pretrain_embeddings = false;

  auto run = [&]() {
    auto model = core::build_yollo(dataset, vocab, options);
    core::TrainConfig tc;
    tc.epochs = 1000;
    tc.max_steps = 8;
    tc.batch_size = 8;
    tc.log_every = 1;
    return core::train_yollo(*model, dataset.train(), tc);
  };
  const core::TrainResult a = run();
  const core::TrainResult b = run();
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_FLOAT_EQ(a.curve[i].total, b.curve[i].total)
        << "training must be bit-reproducible given fixed seeds";
  }
}

}  // namespace
}  // namespace yollo
