// Shared helpers for the yollo test suites.
#pragma once

#include <chrono>
#include <functional>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "runtime/fault.h"
#include "serve/service.h"
#include "tensor/tensor.h"

namespace yollo::testing {

// Finite-difference gradient check.
//
// `fn` maps the list of leaf Variables to a scalar Variable. For every leaf
// that requires grad, each element is perturbed by +/- eps and the numeric
// derivative is compared against the autograd gradient.
//
// Build the graph fresh inside `fn` on every call: the helper re-invokes it
// after each perturbation.
inline void check_gradients(
    const std::function<ag::Variable(std::vector<ag::Variable>&)>& fn,
    std::vector<ag::Variable>& leaves, float eps = 1e-3f, float tol = 2e-2f) {
  // Analytic gradients.
  for (ag::Variable& leaf : leaves) leaf.zero_grad();
  ag::Variable loss = fn(leaves);
  ASSERT_EQ(loss.numel(), 1) << "gradcheck target must be scalar";
  loss.backward();

  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (ag::Variable& leaf : leaves) {
    analytic.push_back(leaf.has_grad() ? leaf.grad().clone()
                                       : Tensor(leaf.shape()));
  }

  // Numeric gradients.
  for (size_t li = 0; li < leaves.size(); ++li) {
    ag::Variable& leaf = leaves[li];
    if (!leaf.requires_grad()) continue;
    float* data = leaf.value().data();
    for (int64_t i = 0; i < leaf.numel(); ++i) {
      const float saved = data[i];
      data[i] = saved + eps;
      const float up = fn(leaves).value().item();
      data[i] = saved - eps;
      const float down = fn(leaves).value().item();
      data[i] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      const float got = analytic[li][i];
      const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(got)});
      EXPECT_NEAR(got, numeric, tol * scale)
          << "leaf " << li << " element " << i;
    }
  }
}

// --- serving scenario fixture ----------------------------------------------
//
// One table of named configurations, one runner, shared assertions — the
// config-map pattern: each serving suite instantiates TEST_P over
// serve_scenario_table() and layers its own expectations on the common
// outcome instead of hand-rolling a harness per combination. Everything here
// is inline and header-only; only translation units that link yollo_serve
// should instantiate it.

struct ServeScenario {
  const char* name;     // gtest parameter name ([A-Za-z0-9_] only)
  bool warm_cache;      // enable the feature cache and pre-warm every image
  int64_t batch_max;    // continuous-batching formation cap
  bool tight_deadline;  // per-request deadline that real queueing can miss
  bool fault;           // a few transient model-tier faults mid-run
  bool baseline_tier;   // every model forward faults: the two-stage tier
                        // (or typed errors, when no fallback) answers
};

inline std::vector<ServeScenario> serve_scenario_table() {
  return {
      //  name                       warm   bmax  tight  fault  baseline
      {"cold_b1_loose_clean", false, 1, false, false, false},
      {"cold_b8_loose_clean", false, 8, false, false, false},
      {"warm_b1_loose_clean", true, 1, false, false, false},
      {"warm_b8_loose_clean", true, 8, false, false, false},
      {"cold_b8_tight_clean", false, 8, true, false, false},
      {"warm_b8_tight_clean", true, 8, true, false, false},
      {"cold_b8_loose_faulty", false, 8, false, true, false},
      {"warm_b8_loose_faulty", true, 8, false, true, false},
      {"baseline_b1_loose_clean", false, 1, false, false, true},
      {"baseline_b8_loose_clean", false, 8, false, false, true},
  };
}

struct ServeScenarioOutcome {
  serve::ServiceCounters counters;
  serve::FeatureCache::Stats cache;
  int64_t resolved = 0;  // futures that came back (must equal submissions)
  int64_t answered = 0;  // kOk + kDegraded responses
  int64_t errors = 0;    // typed non-answered responses
  double elapsed_ms = 0.0;
};

// The five-term accounting invariant, exact once every future has resolved.
inline void expect_serve_invariant(const serve::ServiceCounters& c) {
  EXPECT_EQ(c.submitted, c.served + c.rejected + c.deadline_exceeded +
                             c.failed + c.cancelled)
      << "five-term invariant broken: submitted=" << c.submitted
      << " served=" << c.served << " rejected=" << c.rejected
      << " deadline_exceeded=" << c.deadline_exceeded
      << " failed=" << c.failed << " cancelled=" << c.cancelled;
}

// Drive `requests` submissions over `distinct_images` images through a
// service configured from the scenario row. `time_scale` stretches the
// deadline constants for sanitizer builds. The injector is scoped (never
// the process-wide one) so scenario faults cannot leak between tests.
inline ServeScenarioOutcome run_serve_scenario(
    core::YolloModel& model, const data::Vocab& vocab,
    baseline::TwoStagePipeline* fallback, const ServeScenario& scenario,
    int64_t requests = 24, int64_t distinct_images = 4,
    int64_t time_scale = 1) {
  using Clock = std::chrono::steady_clock;

  runtime::FaultInjector injector;  // declared before the service: workers
                                    // must stop before their injector dies
  if (scenario.baseline_tier) {
    runtime::FaultInjector::Config fc;
    fc.fail_forward_count = requests * 16;  // every attempt, every retry
    injector.configure(fc);
  }

  serve::ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.queue_capacity = requests;  // admission never rejects for capacity
  cfg.batch_max = scenario.batch_max;
  cfg.feature_cache_mb = scenario.warm_cache ? 16 : 0;
  cfg.max_retries = 1;
  cfg.fault_injector = &injector;
  serve::InferenceService service(model, vocab, cfg, fallback);

  const int64_t img_h = service.model_config().img_h;
  const int64_t img_w = service.model_config().img_w;
  std::vector<Tensor> images;
  for (int64_t i = 0; i < distinct_images; ++i) {
    Rng rng(static_cast<uint64_t>(1000 + i));
    images.push_back(Tensor::rand({3, img_h, img_w}, rng));
  }

  if (scenario.warm_cache) {
    // Pre-warm: one loose-deadline pass over every distinct image, so the
    // measured workload starts with the cache populated.
    for (const Tensor& img : images) {
      serve::GroundRequest req;
      req.image = img;
      req.query = "red circle";
      req.deadline_ms = 0;
      (void)service.ground(std::move(req));
    }
  }

  if (scenario.fault && !scenario.baseline_tier) {
    runtime::FaultInjector::Config fc;
    fc.fail_forward_count = 3;  // transient: retries/degradation absorb it
    injector.configure(fc);
  }

  const char* queries[] = {"red circle", "blue square", "the green thing"};
  const auto start = Clock::now();
  std::vector<std::future<serve::GroundResponse>> futures;
  futures.reserve(static_cast<size_t>(requests));
  for (int64_t i = 0; i < requests; ++i) {
    serve::GroundRequest req;
    req.image = images[static_cast<size_t>(i % distinct_images)];
    req.query = queries[i % 3];
    req.deadline_ms = scenario.tight_deadline ? 150 * time_scale : 0;
    futures.push_back(service.submit(std::move(req)));
  }

  ServeScenarioOutcome out;
  for (auto& f : futures) {
    const serve::GroundResponse resp = f.get();
    ++out.resolved;
    if (resp.status.answered()) {
      ++out.answered;
    } else {
      ++out.errors;
    }
  }
  out.elapsed_ms = std::chrono::duration<double, std::milli>(
                       Clock::now() - start)
                       .count();
  service.stop();
  out.counters = service.counters();
  out.cache = service.feature_cache().stats();

  // Row-independent guarantees: every submission resolves exactly once and
  // the accounting invariant is exact.
  EXPECT_EQ(out.resolved, requests);
  expect_serve_invariant(out.counters);
  // Loose-deadline rows additionally answer everything: nothing expires,
  // nothing is rejected (capacity == request count), faults degrade rather
  // than fail. Fault rows need the baseline tier for that guarantee —
  // without a fallback a twice-faulted forward is a typed kInternalError.
  if (!scenario.tight_deadline &&
      (fallback != nullptr ||
       (!scenario.fault && !scenario.baseline_tier))) {
    EXPECT_EQ(out.answered, requests) << "scenario " << scenario.name;
  }
  return out;
}

}  // namespace yollo::testing
