// Shared helpers for the yollo test suites.
#pragma once

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace yollo::testing {

// Finite-difference gradient check.
//
// `fn` maps the list of leaf Variables to a scalar Variable. For every leaf
// that requires grad, each element is perturbed by +/- eps and the numeric
// derivative is compared against the autograd gradient.
//
// Build the graph fresh inside `fn` on every call: the helper re-invokes it
// after each perturbation.
inline void check_gradients(
    const std::function<ag::Variable(std::vector<ag::Variable>&)>& fn,
    std::vector<ag::Variable>& leaves, float eps = 1e-3f, float tol = 2e-2f) {
  // Analytic gradients.
  for (ag::Variable& leaf : leaves) leaf.zero_grad();
  ag::Variable loss = fn(leaves);
  ASSERT_EQ(loss.numel(), 1) << "gradcheck target must be scalar";
  loss.backward();

  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (ag::Variable& leaf : leaves) {
    analytic.push_back(leaf.has_grad() ? leaf.grad().clone()
                                       : Tensor(leaf.shape()));
  }

  // Numeric gradients.
  for (size_t li = 0; li < leaves.size(); ++li) {
    ag::Variable& leaf = leaves[li];
    if (!leaf.requires_grad()) continue;
    float* data = leaf.value().data();
    for (int64_t i = 0; i < leaf.numel(); ++i) {
      const float saved = data[i];
      data[i] = saved + eps;
      const float up = fn(leaves).value().item();
      data[i] = saved - eps;
      const float down = fn(leaves).value().item();
      data[i] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      const float got = analytic[li][i];
      const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(got)});
      EXPECT_NEAR(got, numeric, tol * scale)
          << "leaf " << li << " element " << i;
    }
  }
}

}  // namespace yollo::testing
