// Deterministic harness for the yollo::obs subsystem (DESIGN.md §11):
// counter/gauge/histogram semantics, quantile anchors, cross-thread
// exactness (TSan target via scripts/run_sanitized_tests.sh), snapshot
// merging, span nesting and ring wraparound, chrome://tracing JSON
// validity (parsed back with a minimal JSON checker), and the disabled-path
// overhead guardband.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "tensor/gemm.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define YOLLO_OBS_TEST_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define YOLLO_OBS_TEST_TSAN 1
#endif

namespace obs = yollo::obs;

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader, just enough to validate the files
// the subsystem emits. Not a general-purpose parser: no \uXXXX decoding
// (escapes are passed through verbatim), numbers via strtod.
struct JValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JValue> arr;
  std::map<std::string, JValue> obj;

  const JValue* find(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool parse(JValue& out) {
    if (!value(out)) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  bool literal(const char* lit) {
    const char* q = p_;
    for (; *lit != '\0'; ++lit, ++q) {
      if (q == end_ || *q != *lit) return false;
    }
    p_ = q;
    return true;
  }

  bool string(std::string& out) {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    out.clear();
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        out.push_back(*p_++);
        if (p_ == end_) return false;
      }
      out.push_back(*p_++);
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool value(JValue& out) {
    skip_ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': {
        out.kind = JValue::kObject;
        ++p_;
        skip_ws();
        if (p_ != end_ && *p_ == '}') {
          ++p_;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!string(key)) return false;
          skip_ws();
          if (p_ == end_ || *p_ != ':') return false;
          ++p_;
          JValue v;
          if (!value(v)) return false;
          out.obj.emplace(std::move(key), std::move(v));
          skip_ws();
          if (p_ != end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          if (p_ != end_ && *p_ == '}') {
            ++p_;
            return true;
          }
          return false;
        }
      }
      case '[': {
        out.kind = JValue::kArray;
        ++p_;
        skip_ws();
        if (p_ != end_ && *p_ == ']') {
          ++p_;
          return true;
        }
        for (;;) {
          JValue v;
          if (!value(v)) return false;
          out.arr.push_back(std::move(v));
          skip_ws();
          if (p_ != end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          if (p_ != end_ && *p_ == ']') {
            ++p_;
            return true;
          }
          return false;
        }
      }
      case '"':
        out.kind = JValue::kString;
        return string(out.str);
      case 't':
        out.kind = JValue::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JValue::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JValue::kNull;
        return literal("null");
      default: {
        char* after = nullptr;
        out.kind = JValue::kNumber;
        out.number = std::strtod(p_, &after);
        if (after == p_ || after > end_) return false;
        p_ = after;
        return true;
      }
    }
  }

  const char* p_;
  const char* end_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + stem + "_" +
         std::to_string(::getpid()) + ".json";
}

// ---------------------------------------------------------------------------
// Metrics semantics

TEST(Counter, IncrementValueReset) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
  // Find-or-create returns the same object.
  EXPECT_EQ(&reg.counter("c"), &c);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Gauge, SetAndHighWaterMark) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("g");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  g.set_max(7.0);
  g.set_max(2.0);  // below the mark: no effect
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketSemanticsAreLessOrEqual) {
  obs::Histogram h({1.0, 2.0, 4.0, 8.0});
  h.observe(1.0);  // on a bound: counts in that bucket (le semantics)
  h.observe(1.5);
  h.observe(8.0);
  h.observe(9.0);  // above the last bound: overflow bucket
  const obs::HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 5u);
  EXPECT_EQ(s.counts[0], 1);
  EXPECT_EQ(s.counts[1], 1);
  EXPECT_EQ(s.counts[2], 0);
  EXPECT_EQ(s.counts[3], 1);
  EXPECT_EQ(s.counts[4], 1);
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.sum, 19.5);
  EXPECT_DOUBLE_EQ(s.mean(), 19.5 / 4.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, RegistryReRegistrationBoundsMustMatch) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&reg.histogram("h", {1.0, 2.0}), &h);
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), std::invalid_argument);
}

TEST(Histogram, QuantileAnchors) {
  obs::Histogram h({1.0, 2.0, 4.0, 8.0});
  for (double v : {0.5, 1.5, 3.0, 6.0}) h.observe(v);
  const obs::HistogramSnapshot s = h.snapshot();
  // rank(0.5) = 2 lands at the top of bucket (1, 2].
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.0);
  // rank(0.99) = 3.96 interpolates 96% into bucket (4, 8].
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 4.0 + 0.96 * 4.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 8.0);
}

TEST(Histogram, QuantileFirstBucketInterpolatesFromZero) {
  obs::Histogram h({1.0, 2.0});
  h.observe(0.1);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.5);
}

TEST(Histogram, QuantileOverflowClampsToLastBound) {
  obs::Histogram h({1.0, 2.0});
  h.observe(100.0);
  h.observe(200.0);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.99), 2.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  obs::Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
}

TEST(Histogram, MergeRequiresMatchingBounds) {
  obs::Histogram a({1.0, 2.0});
  obs::Histogram b({1.0, 2.0});
  obs::Histogram c({1.0, 4.0});
  a.observe(0.5);
  b.observe(1.5);
  c.observe(3.0);
  obs::HistogramSnapshot sa = a.snapshot();
  sa.merge(b.snapshot());
  EXPECT_EQ(sa.count, 2);
  EXPECT_EQ(sa.counts[0], 1);
  EXPECT_EQ(sa.counts[1], 1);
  EXPECT_DOUBLE_EQ(sa.sum, 2.0);
  EXPECT_THROW(sa.merge(c.snapshot()), std::invalid_argument);
}

TEST(MetricsSnapshot, MergeAddsCountersMaxesGaugesMergesHistograms) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("shared").inc(2);
  b.counter("shared").inc(3);
  b.counter("only_b").inc(7);
  a.gauge("peak").set(5.0);
  b.gauge("peak").set(4.0);
  a.histogram("lat", {1.0, 2.0}).observe(0.5);
  b.histogram("lat", {1.0, 2.0}).observe(1.5);

  obs::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counter("shared"), 5);
  EXPECT_EQ(merged.counter("only_b"), 7);
  EXPECT_EQ(merged.counter("absent"), 0);
  EXPECT_DOUBLE_EQ(merged.gauge("peak"), 5.0);
  const obs::HistogramSnapshot* lat = merged.histogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2);
  EXPECT_EQ(lat->counts[0], 1);
  EXPECT_EQ(lat->counts[1], 1);
}

TEST(MetricsSnapshot, JsonRoundTripsThroughParser) {
  obs::MetricsRegistry reg;
  reg.counter("req.count").inc(12);
  reg.gauge("queue.peak").set(3.0);
  obs::Histogram& h = reg.histogram("lat_ms", {1.0, 10.0});
  h.observe(0.5);
  h.observe(20.0);

  const std::string json = reg.snapshot().to_json();
  JValue root;
  ASSERT_TRUE(JsonReader(json).parse(root)) << json;
  ASSERT_EQ(root.kind, JValue::kObject);

  const JValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const JValue* count = counters->find("req.count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->number, 12.0);

  const JValue* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("queue.peak")->number, 3.0);

  const JValue* hists = root.find("histograms");
  ASSERT_NE(hists, nullptr);
  const JValue* lat = hists->find("lat_ms");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->find("count")->number, 2.0);
  const JValue* buckets = lat->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->arr.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(buckets->arr[2].find("le")->str, "inf");
  EXPECT_DOUBLE_EQ(buckets->arr[2].find("count")->number, 1.0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsReferences) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Histogram& h = reg.histogram("h", {1.0});
  c.inc(5);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  c.inc();  // the cached reference is still live
  EXPECT_EQ(reg.snapshot().counter("c"), 1);
}

TEST(ScopedTimer, ObservesOnceOnScopeExit) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("t_ms", obs::latency_ms_bounds());
  {
    obs::ScopedTimer timer(h);
  }
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(h.snapshot().sum, 0.0);
}

// ---------------------------------------------------------------------------
// Concurrency: exact totals under contention (TSan leg re-runs these).

TEST(MetricsConcurrency, SharedRegistryExactTotals) {
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("hits");
  obs::Gauge& g = reg.gauge("peak");
  obs::Histogram& h = reg.histogram("obs", {1.0, 10.0});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(i % 2 == 0 ? 0.5 : 5.0);
        g.set_max(static_cast<double>(t * kIters + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), int64_t{kThreads} * kIters);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, int64_t{kThreads} * kIters);
  EXPECT_EQ(s.counts[0], int64_t{kThreads} * kIters / 2);
  EXPECT_EQ(s.counts[1], int64_t{kThreads} * kIters / 2);
  EXPECT_DOUBLE_EQ(g.value(), double{kThreads - 1} * kIters + kIters - 1);
}

TEST(MetricsConcurrency, PerThreadRegistriesMergeExactly) {
  constexpr int kThreads = 6;
  constexpr int kIters = 5000;
  std::vector<obs::MetricsRegistry> regs(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&regs, t] {
      obs::Counter& c = regs[static_cast<size_t>(t)].counter("work");
      obs::Histogram& h =
          regs[static_cast<size_t>(t)].histogram("ms", {1.0, 2.0});
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(1.5);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  obs::MetricsSnapshot total = regs[0].snapshot();
  for (int t = 1; t < kThreads; ++t) total.merge(regs[static_cast<size_t>(t)].snapshot());
  EXPECT_EQ(total.counter("work"), int64_t{kThreads} * kIters);
  ASSERT_NE(total.histogram("ms"), nullptr);
  EXPECT_EQ(total.histogram("ms")->counts[1], int64_t{kThreads} * kIters);
}

// ---------------------------------------------------------------------------
// Gating

TEST(Gating, SetEnabledOverridesAndEnvIsReadOnce) {
  const bool was = obs::enabled();
  obs::set_enabled(true);
  EXPECT_TRUE(obs::enabled());
  obs::set_enabled(false);
  EXPECT_FALSE(obs::enabled());
  // Force a re-read of the environment.
  ::setenv("YOLLO_OBS", "1", 1);
  obs::detail::g_enabled.store(-1);
  EXPECT_TRUE(obs::enabled());
  ::setenv("YOLLO_OBS", "0", 1);
  obs::detail::g_enabled.store(-1);
  EXPECT_FALSE(obs::enabled());
  ::unsetenv("YOLLO_OBS");
  obs::set_enabled(was);
}

// ---------------------------------------------------------------------------
// Trace spans. Each test owns the global enable flag and the rings.

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::enabled();
    obs::set_enabled(true);
    obs::clear_trace();
  }
  void TearDown() override {
    obs::set_trace_capacity(16384);
    obs::clear_trace();
    obs::set_enabled(was_enabled_);
  }

  static std::vector<obs::SpanRecord> spans_named(const std::string& prefix) {
    std::vector<obs::SpanRecord> out;
    for (const obs::SpanRecord& s : obs::collect_trace()) {
      if (s.name != nullptr && std::string(s.name).rfind(prefix, 0) == 0) {
        out.push_back(s);
      }
    }
    return out;
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(TraceTest, NestedSpansRecordDepthAndContainment) {
  {
    OBS_SPAN("nest.outer");
    {
      OBS_SPAN("nest.inner");
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  const std::vector<obs::SpanRecord> spans = spans_named("nest.");
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start: the outer span opened first.
  EXPECT_STREQ(spans[0].name, "nest.outer");
  EXPECT_STREQ(spans[1].name, "nest.inner");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  // Containment: the inner interval sits inside the outer one.
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[0].start_ns + spans[0].dur_ns,
            spans[1].start_ns + spans[1].dur_ns);
  EXPECT_GT(spans[1].dur_ns, 0);
}

TEST_F(TraceTest, SequentialSpansAreTopLevel) {
  { OBS_SPAN("seq.a"); }
  { OBS_SPAN("seq.b"); }
  const std::vector<obs::SpanRecord> spans = spans_named("seq.");
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].depth, 0);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  obs::set_enabled(false);
  { OBS_SPAN("off.never"); }
  obs::set_enabled(true);
  EXPECT_TRUE(spans_named("off.").empty());
}

TEST_F(TraceTest, RingWrapsKeepingNewestSpans) {
  obs::set_trace_capacity(8);
  for (int i = 0; i < 12; ++i) {
    OBS_SPAN("wrap.early");
  }
  for (int i = 0; i < 8; ++i) {
    OBS_SPAN("wrap.late");
  }
  const std::vector<obs::SpanRecord> spans = spans_named("wrap.");
  ASSERT_EQ(spans.size(), 8u);
  for (const obs::SpanRecord& s : spans) EXPECT_STREQ(s.name, "wrap.late");
}

TEST_F(TraceTest, SpansFromManyThreadsAllRetained) {
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        OBS_SPAN("mt.span");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<obs::SpanRecord> spans = spans_named("mt.");
  EXPECT_EQ(spans.size(), static_cast<size_t>(kThreads) * kSpans);
}

TEST_F(TraceTest, DumpTraceEmitsValidChromeJson) {
  {
    OBS_SPAN("dump.outer");
    OBS_SPAN("dump.inner");
  }
  const std::string path = temp_path("obs_trace");
  ASSERT_TRUE(obs::dump_trace(path));
  const std::string text = read_file(path);
  std::remove(path.c_str());

  JValue root;
  ASSERT_TRUE(JsonReader(text).parse(root)) << text;
  ASSERT_EQ(root.kind, JValue::kObject);
  const JValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JValue::kArray);

  bool saw_outer = false;
  bool saw_inner = false;
  for (const JValue& ev : events->arr) {
    ASSERT_EQ(ev.kind, JValue::kObject);
    const JValue* name = ev.find("name");
    const JValue* ph = ev.find("ph");
    const JValue* ts = ev.find("ts");
    const JValue* dur = ev.find("dur");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(dur, nullptr);
    EXPECT_EQ(ph->str, "X");
    EXPECT_EQ(ts->kind, JValue::kNumber);
    EXPECT_EQ(dur->kind, JValue::kNumber);
    EXPECT_GE(dur->number, 0.0);
    if (name->str == "dump.outer") saw_outer = true;
    if (name->str == "dump.inner") saw_inner = true;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST_F(TraceTest, DumpTraceFailsOnUnwritablePath) {
  EXPECT_FALSE(obs::dump_trace("/nonexistent-dir-for-obs-test/trace.json"));
}

// ---------------------------------------------------------------------------
// Kernel hooks: an enabled run of the instrumented GEMM records its span
// and bumps the gated call counter.

TEST_F(TraceTest, GemmRecordsSpanAndCallCounter) {
  obs::Counter& calls = obs::MetricsRegistry::global().counter("gemm.calls");
  const int64_t before = calls.value();
  constexpr int64_t kN = 24;
  std::vector<float> a(kN * kN, 1.0f);
  std::vector<float> b(kN * kN, 2.0f);
  std::vector<float> c(kN * kN, 0.0f);
  yollo::gemm(false, false, kN, kN, kN, a.data(), b.data(), c.data(), {});
  EXPECT_EQ(calls.value(), before + 1);
  EXPECT_FLOAT_EQ(c[0], 2.0f * kN);
  EXPECT_FALSE(spans_named("gemm").empty());
}

// ---------------------------------------------------------------------------
// Overhead regression: with YOLLO_OBS off, an OBS_SPAN in a tight loop must
// stay within a small guardband of its uninstrumented twin (one relaxed
// atomic load + branch per iteration). Alternating best-of-N runs cancel
// machine-load drift.

uint64_t xorshift_step(uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

__attribute__((noinline)) uint64_t loop_plain(int64_t iters, uint64_t x) {
  for (int64_t i = 0; i < iters; ++i) x = xorshift_step(x);
  return x;
}

__attribute__((noinline)) uint64_t loop_instrumented(int64_t iters,
                                                     uint64_t x) {
  for (int64_t i = 0; i < iters; ++i) {
    OBS_SPAN("overhead.iter");
    x = xorshift_step(x);
  }
  return x;
}

TEST(ObsOverhead, DisabledSpanStaysWithinGuardband) {
#ifdef YOLLO_OBS_TEST_TSAN
  // TSan intercepts the disabled path's single atomic load, inflating it
  // far past the guardband; the overhead claim is about production builds.
  GTEST_SKIP() << "disabled-hook overhead is not meaningful under TSan";
#endif
  const bool was = obs::enabled();
  obs::set_enabled(false);  // the sanitizer leg exports YOLLO_OBS=1
  constexpr int64_t kIters = 2000000;
  constexpr int kReps = 5;
  double best_plain = 1e300;
  double best_instr = 1e300;
  uint64_t sink = 0x2545f4914f6cdd1dULL;
  using Clock = std::chrono::steady_clock;
  for (int rep = 0; rep < kReps; ++rep) {
    Clock::time_point t0 = Clock::now();
    sink = loop_plain(kIters, sink);
    const double plain =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    t0 = Clock::now();
    sink = loop_instrumented(kIters, sink);
    const double instr =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    best_plain = std::min(best_plain, plain);
    best_instr = std::min(best_instr, instr);
  }
  obs::set_enabled(was);
  EXPECT_NE(sink, 0u);
  // Guardband: the disabled hook may not double the loop (plus 2 ms of
  // absolute slack so sanitizer/debug builds do not flake on tiny bases).
  EXPECT_LE(best_instr, best_plain * 2.0 + 2.0)
      << "plain " << best_plain << " ms vs instrumented " << best_instr
      << " ms over " << kIters << " iterations";
}

}  // namespace
