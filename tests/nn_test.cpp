// Tests for nn layers and optimisers: shapes, registration, gradients, and
// end-to-end optimisation sanity.
#include <cmath>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "optim/optim.h"
#include "test_util.h"

namespace yollo {
namespace {

using ag::Variable;
using yollo::testing::check_gradients;

TEST(ModuleTest, ParameterRegistrationWalksTree) {
  Rng rng(1);
  nn::FFN ffn(4, 8, 2, rng);
  const auto params = ffn.parameters();
  // fc1.weight, fc1.bias, fc2.weight, fc2.bias
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(ffn.parameter_count(), 4 * 8 + 8 + 8 * 2 + 2);
  const auto named = ffn.named_parameters();
  EXPECT_EQ(named[0].name, "fc1.weight");
  EXPECT_EQ(named[3].name, "fc2.bias");
}

TEST(ModuleTest, TrainingFlagPropagates) {
  Rng rng(2);
  nn::FFN ffn(2, 2, 2, rng);
  EXPECT_TRUE(ffn.training());
  ffn.set_training(false);
  EXPECT_FALSE(ffn.fc1.training());
  EXPECT_FALSE(ffn.fc2.training());
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(3);
  nn::FFN a(3, 5, 2, rng);
  nn::FFN b(3, 5, 2, rng);
  const std::string path = ::testing::TempDir() + "/ffn_params.bin";
  nn::save_parameters(a, path);
  nn::load_parameters(b, path);
  Variable x = Variable::constant(Tensor::randn({2, 3}, rng));
  EXPECT_TRUE(allclose(a.forward(x).value(), b.forward(x).value()));
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(4);
  nn::Linear lin(3, 2, rng);
  lin.weight.value().copy_from(Tensor({3, 2}, {1, 2, 3, 4, 5, 6}));
  lin.bias.value().copy_from(Tensor({2}, {10, 20}));
  Variable x = Variable::constant(Tensor({1, 3}, {1, 1, 1}));
  Tensor y = lin.forward(x).value();
  EXPECT_FLOAT_EQ(y.at({0, 0}), 1 + 3 + 5 + 10);
  EXPECT_FLOAT_EQ(y.at({0, 1}), 2 + 4 + 6 + 20);
}

TEST(LinearTest, HandlesRank3Input) {
  Rng rng(5);
  nn::Linear lin(4, 6, rng);
  Variable x = Variable::constant(Tensor::randn({2, 3, 4}, rng));
  Variable y = lin.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 6}));
  // Same rows flattened must agree with the 2-D path.
  Variable x2 = Variable::constant(x.value().reshape({6, 4}));
  EXPECT_TRUE(allclose(y.value().reshape({6, 6}), lin.forward(x2).value()));
}

TEST(LinearTest, RejectsWrongInputDim) {
  Rng rng(6);
  nn::Linear lin(4, 2, rng);
  Variable x = Variable::constant(Tensor::randn({2, 3}, rng));
  EXPECT_THROW(lin.forward(x), std::invalid_argument);
}

TEST(LinearTest, GradCheckThroughLayer) {
  Rng rng(7);
  nn::Linear lin(3, 2, rng);
  std::vector<Variable> leaves{lin.weight, lin.bias,
                               Variable::param(Tensor::randn({4, 3}, rng))};
  check_gradients(
      [&lin](std::vector<Variable>& v) {
        return ag::sum(ag::square(lin.forward(v[2])));
      },
      leaves);
}

TEST(EmbeddingTest, LookupAndBounds) {
  Rng rng(8);
  nn::Embedding emb(10, 4, rng);
  Variable e = emb.forward({0, 9, 3});
  EXPECT_EQ(e.shape(), (Shape{3, 4}));
  EXPECT_THROW(emb.forward({10}), std::out_of_range);
  EXPECT_THROW(emb.forward({-1}), std::out_of_range);
}

TEST(Conv2dLayerTest, OutputShape) {
  Rng rng(9);
  nn::Conv2d conv(3, 8, /*kernel=*/3, /*stride=*/2, /*padding=*/1, rng);
  Variable x = Variable::constant(Tensor::randn({2, 3, 16, 24}, rng));
  Variable y = conv.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 8, 12}));
}

TEST(BatchNormTest, NormalisesBatchStatistics) {
  Rng rng(10);
  nn::BatchNorm2d bn(3);
  Variable x = Variable::constant(
      Tensor::randn({4, 3, 5, 5}, rng, /*mean=*/5.0f, /*stddev=*/3.0f));
  Variable y = bn.forward(x);
  // Per-channel mean ~0 and var ~1 after normalisation.
  Tensor yc = y.value().transpose(0, 1).reshape({3, 4 * 5 * 5});
  for (int64_t c = 0; c < 3; ++c) {
    const Tensor row = yc.narrow(0, c, 1);
    EXPECT_NEAR(mean(row).item(), 0.0f, 1e-4f);
    const Tensor sq = mul(row, row);
    EXPECT_NEAR(mean(sq).item(), 1.0f, 1e-2f);
  }
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  Rng rng(11);
  nn::BatchNorm2d bn(2, /*momentum=*/1.0f);  // running stats = last batch
  Variable x = Variable::constant(Tensor::randn({8, 2, 4, 4}, rng, 2.0f, 1.5f));
  bn.forward(x);
  bn.set_training(false);
  // In eval mode the same input should be normalised with the stored stats,
  // giving (approximately) zero-mean output again.
  Variable y = bn.forward(x);
  EXPECT_NEAR(mean(y.value()).item(), 0.0f, 1e-2f);
  // And a *different*, shifted input keeps its shift (stats are frozen).
  Variable x2 = Variable::constant(
      add_scalar(x.value(), 10.0f));
  Variable y2 = bn.forward(x2);
  EXPECT_GT(mean(y2.value()).item(), 5.0f);
}

TEST(BatchNormTest, GradCheckTrainingMode) {
  Rng rng(12);
  nn::BatchNorm2d bn(2);
  std::vector<Variable> leaves{
      Variable::param(Tensor::randn({3, 2, 2, 2}, rng)), bn.gamma, bn.beta};
  check_gradients(
      [&bn](std::vector<Variable>& v) {
        return ag::sum(ag::square(bn.forward(v[0])));
      },
      leaves, 1e-2f, 5e-2f);
}

TEST(LayerNormTest, NormalisesLastAxis) {
  Rng rng(13);
  nn::LayerNorm ln(6);
  Variable x = Variable::constant(Tensor::randn({4, 6}, rng, 3.0f, 2.0f));
  Variable y = ln.forward(x);
  for (int64_t r = 0; r < 4; ++r) {
    const Tensor row = y.value().narrow(0, r, 1);
    EXPECT_NEAR(mean(row).item(), 0.0f, 1e-4f);
  }
}

TEST(LayerNormTest, GradCheck) {
  Rng rng(14);
  nn::LayerNorm ln(4);
  std::vector<Variable> leaves{Variable::param(Tensor::randn({3, 4}, rng)),
                               ln.gamma, ln.beta};
  check_gradients(
      [&ln](std::vector<Variable>& v) {
        return ag::sum(ag::square(ln.forward(v[0])));
      },
      leaves, 1e-2f, 5e-2f);
}

// --- optimisers --------------------------------------------------------------

TEST(OptimTest, SgdSingleStepMatchesFormula) {
  Variable w = Variable::param(Tensor::from_vector({1.0f, 2.0f}));
  optim::SGD sgd({&w}, /*lr=*/0.1f);
  ag::sum(ag::square(w)).backward();  // grad = 2w
  sgd.step();
  EXPECT_FLOAT_EQ(w.value()[0], 1.0f - 0.1f * 2.0f);
  EXPECT_FLOAT_EQ(w.value()[1], 2.0f - 0.1f * 4.0f);
}

TEST(OptimTest, ClipGradNorm) {
  Variable w = Variable::param(Tensor::from_vector({0.0f}));
  optim::SGD sgd({&w}, 0.1f);
  Variable loss = ag::mul_scalar(ag::sum(w), 30.0f);
  loss.backward();
  const float pre = sgd.clip_grad_norm(3.0f);
  EXPECT_FLOAT_EQ(pre, 30.0f);
  EXPECT_NEAR(w.grad()[0], 3.0f, 1e-5f);
}

TEST(OptimTest, AdamConvergesOnQuadratic) {
  // Minimise ||w - target||^2; Adam should reach the target closely.
  Rng rng(15);
  const Tensor target({4}, {1.0f, -2.0f, 0.5f, 3.0f});
  Variable w = Variable::param(Tensor::randn({4}, rng));
  optim::Adam adam({&w}, /*lr=*/0.05f);
  for (int i = 0; i < 500; ++i) {
    adam.zero_grad();
    Variable diff = ag::sub(w, Variable::constant(target));
    ag::sum(ag::square(diff)).backward();
    adam.step();
  }
  EXPECT_LT(max_abs_diff(w.value(), target), 1e-2f);
}

TEST(OptimTest, SgdMomentumConvergesOnLinearRegression) {
  // Fit y = Xw on synthetic data.
  Rng rng(16);
  const Tensor true_w({3, 1}, {2.0f, -1.0f, 0.5f});
  const Tensor x = Tensor::randn({32, 3}, rng);
  const Tensor y = matmul(x, true_w);
  Variable w = Variable::param(Tensor::zeros({3, 1}));
  optim::SGD sgd({&w}, /*lr=*/0.05f, /*momentum=*/0.9f);
  for (int i = 0; i < 300; ++i) {
    sgd.zero_grad();
    Variable pred = ag::matmul(Variable::constant(x), w);
    Variable err = ag::sub(pred, Variable::constant(y));
    ag::mean(ag::square(err)).backward();
    sgd.step();
  }
  EXPECT_LT(max_abs_diff(w.value(), true_w), 5e-2f);
}

TEST(OptimTest, CosineScheduleShape) {
  optim::CosineSchedule sched(1.0f, /*warmup=*/10, /*total=*/110);
  EXPECT_LT(sched.lr_at(0), 0.2f);             // warming up
  EXPECT_FLOAT_EQ(sched.lr_at(9), 1.0f);       // warmup end
  EXPECT_NEAR(sched.lr_at(60), 0.5f, 0.05f);   // mid-decay
  EXPECT_NEAR(sched.lr_at(109), 0.0f, 1e-3f);  // end
  EXPECT_FLOAT_EQ(sched.lr_at(200), 0.0f);     // past end
}

TEST(IntegrationTest, TinyMlpLearnsXor) {
  Rng rng(17);
  nn::FFN net(2, 16, 1, rng);
  const Tensor inputs({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  const Tensor targets({4, 1}, {0, 1, 1, 0});
  auto params = net.parameters();
  optim::Adam adam(params, 0.05f);
  float loss_value = 1.0f;
  for (int step = 0; step < 800; ++step) {
    adam.zero_grad();
    Variable pred = ag::sigmoid(net.forward(Variable::constant(inputs)));
    Variable err = ag::sub(pred, Variable::constant(targets));
    Variable loss = ag::mean(ag::square(err));
    loss.backward();
    adam.step();
    loss_value = loss.value().item();
  }
  EXPECT_LT(loss_value, 0.02f) << "XOR did not converge";
  Variable pred = ag::sigmoid(net.forward(Variable::constant(inputs)));
  EXPECT_LT(pred.value()[0], 0.3f);
  EXPECT_GT(pred.value()[1], 0.7f);
  EXPECT_GT(pred.value()[2], 0.7f);
  EXPECT_LT(pred.value()[3], 0.3f);
}

}  // namespace
}  // namespace yollo

// -- appended: buffer serialisation -------------------------------------------
namespace yollo {
namespace {

TEST(ModuleTest, BatchNormBuffersSurviveSaveLoad) {
  Rng rng(50);
  nn::BatchNorm2d a(3, /*momentum=*/1.0f);
  nn::BatchNorm2d b(3);
  // Drive a's running stats away from the defaults.
  ag::Variable x = ag::Variable::constant(
      Tensor::randn({4, 3, 5, 5}, rng, /*mean=*/7.0f, /*stddev=*/2.0f));
  a.forward(x);
  ASSERT_GT(a.running_mean()[0], 3.0f);

  const std::string path = ::testing::TempDir() + "/bn.bin";
  nn::save_parameters(a, path);
  const bool had_buffers = nn::load_parameters(b, path);
  EXPECT_TRUE(had_buffers);
  EXPECT_TRUE(allclose(a.running_mean(), b.running_mean()));
  EXPECT_TRUE(allclose(a.running_var(), b.running_var()));
  // Eval-mode outputs now agree exactly.
  a.set_training(false);
  b.set_training(false);
  EXPECT_TRUE(allclose(a.forward(x).value(), b.forward(x).value()));
}

TEST(ModuleTest, LegacyFileWithoutBuffersLoadsParamsOnly) {
  Rng rng(51);
  nn::FFN a(3, 4, 2, rng);  // no buffers at all
  const std::string path = ::testing::TempDir() + "/ffn2.bin";
  nn::save_parameters(a, path);
  nn::FFN b(3, 4, 2, rng);
  // FFN has zero buffers, so the buffer section is present but empty.
  EXPECT_TRUE(nn::load_parameters(b, path));
  EXPECT_EQ(a.named_buffers().size(), 0u);
}

}  // namespace
}  // namespace yollo
