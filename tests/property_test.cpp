// Property-based suites (parameterised gtest) over algebraic invariants of
// the tensor kernels, autograd, and geometry utilities. Each property is
// checked across a sweep of random shapes/seeds.
#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "tensor/tensor.h"
#include "vision/anchors.h"
#include "vision/box.h"

namespace yollo {
namespace {

// ---------- elementwise algebra across random shapes ------------------------

struct ShapeCase {
  Shape a;
  Shape b;  // broadcast-compatible with a
  uint64_t seed;
};

class ElementwiseAlgebra : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ElementwiseAlgebra, CommutativityAndDistributivity) {
  const ShapeCase& cfg = GetParam();
  Rng rng(cfg.seed);
  const Tensor a = Tensor::randn(cfg.a, rng);
  const Tensor b = Tensor::randn(cfg.b, rng);
  const Tensor c = Tensor::randn(cfg.b, rng);

  EXPECT_TRUE(allclose(add(a, b), add(b, a), 1e-5f, 1e-6f));
  EXPECT_TRUE(allclose(mul(a, b), mul(b, a), 1e-5f, 1e-6f));
  // a * (b + c) == a*b + a*c
  EXPECT_TRUE(allclose(mul(a, add(b, c)), add(mul(a, b), mul(a, c)), 1e-4f,
                       1e-5f));
  // (a - b) + b == broadcast(a)
  const Shape out_shape = broadcast_shape(cfg.a, cfg.b);
  EXPECT_TRUE(allclose(add(sub(a, b), b), a.broadcast_to(out_shape), 1e-4f,
                       1e-5f));
}

TEST_P(ElementwiseAlgebra, ReduceToShapeIsAdjointOfBroadcast) {
  // <broadcast(a), g> == <a, reduce_to_shape(g)>.
  const ShapeCase& cfg = GetParam();
  Rng rng(cfg.seed + 1);
  const Shape out_shape = broadcast_shape(cfg.a, cfg.b);
  const Tensor a = Tensor::randn(cfg.b, rng);
  const Tensor g = Tensor::randn(out_shape, rng);
  const Tensor ab = a.broadcast_to(out_shape);
  const Tensor ga = reduce_to_shape(g, cfg.b);
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < ab.numel(); ++i) lhs += ab[i] * g[i];
  for (int64_t i = 0; i < a.numel(); ++i) rhs += a[i] * ga[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ElementwiseAlgebra,
    ::testing::Values(ShapeCase{{4}, {4}, 1}, ShapeCase{{3, 4}, {4}, 2},
                      ShapeCase{{2, 3, 4}, {3, 4}, 3},
                      ShapeCase{{2, 3, 4}, {1, 4}, 4},
                      ShapeCase{{5, 1, 4}, {5, 2, 1}, 5},
                      ShapeCase{{2, 2, 2, 2}, {2, 1, 2}, 6}));

// ---------- reductions and softmax -------------------------------------------

class ReductionProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReductionProperty, SumOverAxesEqualsTotalSum) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const Tensor t = Tensor::randn({3, 4, 5}, rng);
  const float total = sum(t).item();
  EXPECT_NEAR(sum(sum(sum(t, 0), 0), 0).item(), total, 1e-3f);
  EXPECT_NEAR(sum(sum(sum(t, 2), 1), 0).item(), total, 1e-3f);
  // mean * numel == sum
  EXPECT_NEAR(mean(t).item() * static_cast<float>(t.numel()), total, 1e-3f);
}

TEST_P(ReductionProperty, SoftmaxIsShiftInvariantDistribution) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  const Tensor t = Tensor::randn({4, 7}, rng, 0.0f, 3.0f);
  const Tensor s = softmax(t, 1);
  const Tensor shifted = softmax(add_scalar(t, 42.0f), 1);
  EXPECT_TRUE(allclose(s, shifted, 1e-4f, 1e-6f));
  const Tensor rows = sum(s, 1);
  for (int64_t r = 0; r < 4; ++r) EXPECT_NEAR(rows[r], 1.0f, 1e-5f);
  EXPECT_GE(min_value(s), 0.0f);
  // argmax is preserved by softmax.
  for (int64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(argmax(t, 1)[r], argmax(s, 1)[r]);
  }
}

TEST_P(ReductionProperty, MatmulDistributesOverAddition) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  const Tensor a = Tensor::randn({4, 6}, rng);
  const Tensor b = Tensor::randn({6, 3}, rng);
  const Tensor c = Tensor::randn({6, 3}, rng);
  EXPECT_TRUE(allclose(matmul(a, add(b, c)),
                       add(matmul(a, b), matmul(a, c)), 1e-3f, 1e-4f));
  // (A B)^T == B^T A^T
  EXPECT_TRUE(allclose(matmul(a, b).transpose(0, 1),
                       matmul(b.transpose(0, 1), a.transpose(0, 1)), 1e-3f,
                       1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionProperty, ::testing::Range(1, 7));

// ---------- autograd linearity / sum rules ------------------------------------

class AutogradProperty : public ::testing::TestWithParam<int> {};

TEST_P(AutogradProperty, GradientOfSumIsOnes) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 300);
  ag::Variable x = ag::Variable::param(Tensor::randn({3, 5}, rng));
  ag::sum(x).backward();
  EXPECT_TRUE(allclose(x.grad(), Tensor::ones({3, 5})));
}

TEST_P(AutogradProperty, BackwardIsLinearInSeedScaling) {
  // grad of (c * f) == c * grad of f.
  Rng rng(static_cast<uint64_t>(GetParam()) + 400);
  const Tensor init = Tensor::randn({4, 4}, rng);
  auto grad_of = [&](float scale) {
    ag::Variable x = ag::Variable::param(init.clone());
    ag::Variable y =
        ag::mul_scalar(ag::sum(ag::mul(ag::tanh(x), x)), scale);
    y.backward();
    return x.grad().clone();
  };
  const Tensor g1 = grad_of(1.0f);
  const Tensor g3 = grad_of(3.0f);
  EXPECT_TRUE(allclose(mul_scalar(g1, 3.0f), g3, 1e-4f, 1e-5f));
}

TEST_P(AutogradProperty, DetachBlocksGradient) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  ag::Variable x = ag::Variable::param(Tensor::randn({3}, rng));
  ag::Variable y = ag::sum(ag::mul(x.detach(), x.detach()));
  EXPECT_FALSE(y.requires_grad());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradProperty, ::testing::Range(1, 6));

// ---------- box geometry invariants ---------------------------------------------

class BoxProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoxProperty, IouTriangleOfContainment) {
  // Shrinking a box towards its centre monotonically decreases IoU with the
  // original.
  Rng rng(static_cast<uint64_t>(GetParam()) + 600);
  const vision::Box base{rng.uniform(0, 40), rng.uniform(0, 40),
                         rng.uniform(10, 30), rng.uniform(10, 30)};
  float prev = 1.0f;
  for (float shrink = 1.0f; shrink >= 0.2f; shrink -= 0.1f) {
    const vision::Box inner = vision::Box::from_center(
        base.cx(), base.cy(), base.w * shrink, base.h * shrink);
    const float overlap = vision::iou(base, inner);
    EXPECT_LE(overlap, prev + 1e-5f);
    prev = overlap;
  }
}

TEST_P(BoxProperty, EncodeDecodeIsInverseForRandomPairs) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 700);
  for (int i = 0; i < 50; ++i) {
    const vision::Box anchor = vision::Box::from_center(
        rng.uniform(5, 70), rng.uniform(5, 40), rng.uniform(6, 25),
        rng.uniform(6, 25));
    const vision::Box target = vision::Box::from_center(
        rng.uniform(5, 70), rng.uniform(5, 40), rng.uniform(4, 30),
        rng.uniform(4, 30));
    const vision::Box round =
        vision::decode_delta(anchor, vision::encode_delta(anchor, target));
    EXPECT_GT(vision::iou(round, target), 0.99f);
  }
}

TEST_P(BoxProperty, NmsOutputIsConflictFree) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 800);
  std::vector<vision::Box> boxes;
  std::vector<float> scores;
  for (int i = 0; i < 40; ++i) {
    boxes.push_back({rng.uniform(0, 50), rng.uniform(0, 30),
                     rng.uniform(5, 20), rng.uniform(5, 20)});
    scores.push_back(rng.uniform());
  }
  const float threshold = 0.3f;
  const auto keep = vision::nms(boxes, scores, threshold);
  for (size_t i = 0; i < keep.size(); ++i) {
    for (size_t j = i + 1; j < keep.size(); ++j) {
      EXPECT_LE(vision::iou(boxes[static_cast<size_t>(keep[i])],
                            boxes[static_cast<size_t>(keep[j])]),
                threshold + 1e-5f);
    }
  }
  // Every suppressed box conflicts with some kept box.
  for (size_t b = 0; b < boxes.size(); ++b) {
    if (std::find(keep.begin(), keep.end(), static_cast<int64_t>(b)) !=
        keep.end()) {
      continue;
    }
    bool conflicted = false;
    for (int64_t k : keep) {
      conflicted = conflicted ||
                   vision::iou(boxes[b], boxes[static_cast<size_t>(k)]) >
                       threshold;
    }
    EXPECT_TRUE(conflicted) << "box " << b << " suppressed without cause";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxProperty, ::testing::Range(1, 8));

}  // namespace
}  // namespace yollo
