// Content-addressed backbone feature cache tests (DESIGN.md §15): hash
// stability, cached-vs-uncached bitwise equivalence through the model's
// split forward, byte-budgeted LRU eviction, pool-budget degradation,
// invalidation on model reload, and multi-threaded sharing.
//
// Suite names deliberately contain "Cache" so `ctest -R 'serve|cache|batch'`
// selects everything here.
#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/vocab.h"
#include "obs/metrics.h"
#include "runtime/fault.h"
#include "serve/feature_cache.h"
#include "serve/service.h"
#include "tensor/pool.h"
#include "test_util.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define YOLLO_TSAN_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define YOLLO_TSAN_BUILD 1
#endif

namespace yollo::serve {
namespace {

struct FaultGuard {
  FaultGuard() { runtime::FaultInjector::instance().reset(); }
  ~FaultGuard() { runtime::FaultInjector::instance().reset(); }
};

core::YolloConfig tiny_config() {
  core::YolloConfig cfg;
  cfg.img_h = 32;
  cfg.img_w = 48;
  cfg.max_query_len = 6;
  cfg.num_rel2att = 1;
  return cfg;
}

Tensor image(int64_t h, int64_t w, uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand({3, h, w}, rng);
}

// A [C, gh, gw]-shaped feature map with deterministic contents.
Tensor fake_features(int64_t c, int64_t gh, int64_t gw, uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand({c, gh, gw}, rng);
}

// --- keying -----------------------------------------------------------------

TEST(FeatureCacheTest, HashIsStableAcrossIdenticalBuffers) {
  const Tensor a = image(32, 48, 9);
  Tensor b = Tensor::zeros(a.shape());
  std::memcpy(b.data(), a.data(),
              static_cast<size_t>(a.numel()) * sizeof(float));
  EXPECT_EQ(FeatureCache::hash_image(a), FeatureCache::hash_image(b));
  // Deterministic across calls, too.
  EXPECT_EQ(FeatureCache::hash_image(a), FeatureCache::hash_image(a));
}

TEST(FeatureCacheTest, DistinctImagesGetDistinctKeys) {
  obs::MetricsRegistry metrics;
  FeatureCache cache(metrics, 1 << 20);
  const Tensor a = image(32, 48, 1);
  const Tensor b = image(32, 48, 2);
  const uint64_t ha = FeatureCache::hash_image(a);
  const uint64_t hb = FeatureCache::hash_image(b);
  EXPECT_NE(ha, hb);
  EXPECT_NE(cache.make_key(ha, 0), cache.make_key(hb, 0));

  // A single flipped pixel changes the hash (content addressing, not
  // prefix addressing: the flip lands in the last plane, past the router's
  // 4 KiB locality prefix).
  Tensor c = a.clone();
  c[c.numel() - 1] += 0.25f;
  EXPECT_NE(FeatureCache::hash_image(a), FeatureCache::hash_image(c));
}

TEST(FeatureCacheTest, GenerationAndEpochChangeTheKey) {
  obs::MetricsRegistry metrics;
  FeatureCache cache(metrics, 1 << 20);
  const uint64_t h = FeatureCache::hash_image(image(32, 48, 3));
  const uint64_t k_gen0 = cache.make_key(h, 0);
  const uint64_t k_gen1 = cache.make_key(h, 1);
  EXPECT_NE(k_gen0, k_gen1);

  cache.invalidate();  // bumps the internal epoch
  EXPECT_NE(cache.make_key(h, 0), k_gen0);
}

// --- model-level equivalence ------------------------------------------------

TEST(FeatureCacheTest, CachedPathIsBitwiseIdenticalToFullForward) {
  FaultGuard guard;
  const core::YolloConfig cfg = tiny_config();
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  Rng rng(123);
  core::YolloModel model(cfg, vocab.size(), rng);
  model.set_training(false);

  const Tensor batched =
      image(cfg.img_h, cfg.img_w, 5).reshape({1, 3, cfg.img_h, cfg.img_w});
  const std::vector<int64_t> tokens =
      data::pad_to(vocab.encode("red circle"), cfg.max_query_len);

  const auto full = model.infer(batched, tokens, /*capture_features=*/true);
  ASSERT_TRUE(full.ok()) << full.message;
  ASSERT_TRUE(full.features.defined());
  ASSERT_EQ(full.features.shape().size(), 4u);
  EXPECT_EQ(full.features.shape()[0], 1);

  const auto cached = model.infer_from_features(full.features, tokens);
  ASSERT_TRUE(cached.ok()) << cached.message;
  ASSERT_EQ(cached.boxes.size(), full.boxes.size());
  for (size_t i = 0; i < full.boxes.size(); ++i) {
    EXPECT_EQ(full.boxes[i].x, cached.boxes[i].x);
    EXPECT_EQ(full.boxes[i].y, cached.boxes[i].y);
    EXPECT_EQ(full.boxes[i].w, cached.boxes[i].w);
    EXPECT_EQ(full.boxes[i].h, cached.boxes[i].h);
  }
}

TEST(FeatureCacheTest, InferFromFeaturesRejectsBadInput) {
  FaultGuard guard;
  const core::YolloConfig cfg = tiny_config();
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  Rng rng(123);
  core::YolloModel model(cfg, vocab.size(), rng);
  model.set_training(false);
  const std::vector<int64_t> tokens =
      data::pad_to(vocab.encode("red circle"), cfg.max_query_len);

  // Undefined / wrong-rank features.
  auto out = model.infer_from_features(Tensor(), tokens);
  EXPECT_EQ(out.error, core::YolloModel::InferError::kInvalidInput);
  out = model.infer_from_features(Tensor::zeros({4, 4}), tokens);
  EXPECT_EQ(out.error, core::YolloModel::InferError::kInvalidInput);

  // Non-finite features.
  const Tensor batched =
      image(cfg.img_h, cfg.img_w, 6).reshape({1, 3, cfg.img_h, cfg.img_w});
  const auto full = model.infer(batched, tokens, /*capture_features=*/true);
  ASSERT_TRUE(full.ok());
  Tensor poisoned = full.features.clone();
  poisoned[3] = std::numeric_limits<float>::quiet_NaN();
  out = model.infer_from_features(poisoned, tokens);
  EXPECT_EQ(out.error, core::YolloModel::InferError::kInvalidInput);
}

// --- LRU + byte accounting --------------------------------------------------

TEST(FeatureCacheTest, LruEvictionOrderAndByteAccounting) {
  obs::MetricsRegistry metrics;
  const int64_t c = 4, gh = 3, gw = 3;
  const int64_t entry_bytes = c * gh * gw * static_cast<int64_t>(sizeof(float));
  FeatureCache cache(metrics, 2 * entry_bytes);  // room for exactly two

  const uint64_t ka = 101, kb = 202, kc = 303;
  EXPECT_TRUE(cache.insert(ka, fake_features(c, gh, gw, 1)));
  EXPECT_TRUE(cache.insert(kb, fake_features(c, gh, gw, 2)));
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.stats().bytes, 2 * entry_bytes);

  // Touch A so B becomes the LRU victim.
  EXPECT_TRUE(cache.lookup(ka).defined());
  EXPECT_TRUE(cache.insert(kc, fake_features(c, gh, gw, 3)));

  EXPECT_TRUE(cache.lookup(ka).defined());
  EXPECT_FALSE(cache.lookup(kb).defined());  // evicted
  EXPECT_TRUE(cache.lookup(kc).defined());

  const FeatureCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 2);
  EXPECT_EQ(s.bytes, 2 * entry_bytes);
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.hits, 3);
  EXPECT_EQ(s.misses, 1);
}

TEST(FeatureCacheTest, LookupViewSurvivesEviction) {
  obs::MetricsRegistry metrics;
  const int64_t c = 2, gh = 2, gw = 2;
  const int64_t entry_bytes = c * gh * gw * static_cast<int64_t>(sizeof(float));
  FeatureCache cache(metrics, entry_bytes);  // room for exactly one

  const Tensor original = fake_features(c, gh, gw, 7);
  ASSERT_TRUE(cache.insert(11, original));
  Tensor view = cache.lookup(11);
  ASSERT_TRUE(view.defined());

  // Inserting a second entry evicts the first; the outstanding view must
  // keep its pinned buffer intact.
  ASSERT_TRUE(cache.insert(22, fake_features(c, gh, gw, 8)));
  EXPECT_FALSE(cache.lookup(11).defined());
  for (int64_t i = 0; i < view.numel(); ++i) {
    EXPECT_EQ(view[i], original[i]);
  }
}

TEST(FeatureCacheTest, OversizedAndNonFiniteInsertsAreRefused) {
  obs::MetricsRegistry metrics;
  FeatureCache cache(metrics, 64);  // 16 floats
  EXPECT_FALSE(cache.insert(1, fake_features(4, 4, 4, 1)));  // 256B > 64B
  Tensor nan_features = fake_features(2, 2, 2, 2);           // 32B fits...
  nan_features[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(cache.insert(2, nan_features));  // ...but is poisoned
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().bytes, 0);
}

TEST(FeatureCacheTest, DisabledCacheIsInert) {
  obs::MetricsRegistry metrics;
  FeatureCache cache(metrics, 0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.insert(1, fake_features(2, 2, 2, 1)));
  EXPECT_FALSE(cache.lookup(1).defined());
  const FeatureCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 0);  // disabled lookups do not count as misses
}

TEST(FeatureCacheTest, PoolBudgetRefusalDegradesToUncached) {
  obs::MetricsRegistry metrics;
  FeatureCache cache(metrics, 1 << 20);
  const Tensor features = fake_features(4, 4, 4, 3);  // 1 KiB copy

  PoolScope scope;
  scope.set_budget_bytes(64);  // far too small for the copy
  EXPECT_FALSE(cache.insert(5, features));
  const FeatureCache::Stats s = cache.stats();
  EXPECT_EQ(s.budget_refused, 1);
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(s.bytes, 0);
}

TEST(FeatureCacheTest, InvalidateDropsEverythingAndBumpsEpoch) {
  obs::MetricsRegistry metrics;
  FeatureCache cache(metrics, 1 << 20);
  ASSERT_TRUE(cache.insert(1, fake_features(2, 2, 2, 1)));
  ASSERT_TRUE(cache.insert(2, fake_features(2, 2, 2, 2)));
  ASSERT_GT(cache.stats().bytes, 0);

  cache.invalidate();
  const FeatureCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(s.bytes, 0);
  EXPECT_EQ(s.invalidations, 1);
  EXPECT_FALSE(cache.lookup(1).defined());
}

// --- model reload interaction -----------------------------------------------

TEST(FeatureCacheTest, ModelReloadBumpsWeightsGeneration) {
  FaultGuard guard;
  const core::YolloConfig cfg = tiny_config();
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  Rng rng(123);
  core::YolloModel model(cfg, vocab.size(), rng);
  model.set_training(false);

  obs::MetricsRegistry metrics;
  FeatureCache cache(metrics, 1 << 20);
  const uint64_t h = FeatureCache::hash_image(image(cfg.img_h, cfg.img_w, 4));

  const uint64_t gen_before = model.weights_generation();
  const uint64_t key_before = cache.make_key(h, gen_before);
  model.invalidate_plans();  // the model-reload signal
  const uint64_t gen_after = model.weights_generation();
  EXPECT_GT(gen_after, gen_before);
  EXPECT_NE(cache.make_key(h, gen_after), key_before);
}

// --- service integration ----------------------------------------------------

TEST(FeatureCacheServiceTest, RepeatImageHitsAndMatchesColdAnswer) {
  FaultGuard guard;
  const core::YolloConfig cfg = tiny_config();
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  Rng rng(123);
  core::YolloModel model(cfg, vocab.size(), rng);
  model.set_training(false);

  ServeConfig scfg;
  scfg.num_workers = 1;
  scfg.batch_max = 1;
  scfg.feature_cache_mb = 16;
  InferenceService service(model, vocab, scfg);
  ASSERT_TRUE(service.feature_cache().enabled());

  GroundRequest req;
  req.image = image(cfg.img_h, cfg.img_w, 5);
  req.query = "red circle";
  const GroundResponse cold = service.ground(GroundRequest(req));
  ASSERT_TRUE(cold.status.ok()) << cold.status.to_string();
  const GroundResponse warm = service.ground(GroundRequest(req));
  ASSERT_TRUE(warm.status.ok()) << warm.status.to_string();

  // Same pixels + same weights: the cached fuse-only pass must reproduce
  // the full forward bitwise.
  EXPECT_EQ(cold.box.x, warm.box.x);
  EXPECT_EQ(cold.box.y, warm.box.y);
  EXPECT_EQ(cold.box.w, warm.box.w);
  EXPECT_EQ(cold.box.h, warm.box.h);

  ServiceCounters c = service.counters();
  EXPECT_GE(c.cache_misses, 1);
  EXPECT_GE(c.cache_hits, 1);
  EXPECT_GT(c.cache_bytes, 0);

  // Invalidation forces the next identical request back onto the full path.
  service.feature_cache().invalidate();
  const GroundResponse after = service.ground(GroundRequest(req));
  ASSERT_TRUE(after.status.ok());
  c = service.counters();
  EXPECT_GE(c.cache_misses, 2);
  EXPECT_EQ(after.box.x, cold.box.x);
  testing::expect_serve_invariant(c);
}

TEST(FeatureCacheServiceTest, EnvEscapeHatchDisablesCache) {
  FaultGuard guard;
  const core::YolloConfig cfg = tiny_config();
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  Rng rng(123);
  core::YolloModel model(cfg, vocab.size(), rng);
  model.set_training(false);

  ServeConfig scfg;
  scfg.num_workers = 1;
  scfg.feature_cache_mb = 0;  // explicit disable wins over the env
  InferenceService service(model, vocab, scfg);
  EXPECT_FALSE(service.feature_cache().enabled());

  GroundRequest req;
  req.image = image(cfg.img_h, cfg.img_w, 5);
  req.query = "red circle";
  (void)service.ground(GroundRequest(req));
  (void)service.ground(GroundRequest(req));
  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.cache_hits, 0);
  EXPECT_EQ(c.cache_misses, 0);
  EXPECT_EQ(c.cache_bytes, 0);
}

// --- concurrency ------------------------------------------------------------

TEST(FeatureCacheTest, SharedCacheSurvivesConcurrentMixedOps) {
  obs::MetricsRegistry metrics;
  const int64_t c = 4, gh = 3, gw = 3;
  const int64_t entry_bytes = c * gh * gw * static_cast<int64_t>(sizeof(float));
  FeatureCache cache(metrics, 3 * entry_bytes);  // eviction pressure

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::atomic<int64_t> defined_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>((t * 7 + i) % 8);
        switch (i % 4) {
          case 0:
            cache.insert(key, fake_features(c, gh, gw, key + 1));
            break;
          case 3:
            if (t == 0 && i % 50 == 3) cache.invalidate();
            [[fallthrough]];
          default: {
            Tensor view = cache.lookup(key);
            if (view.defined()) {
              // The pinned view must stay readable even under concurrent
              // eviction/invalidation.
              volatile float sink = view[0];
              (void)sink;
              defined_hits.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const FeatureCache::Stats s = cache.stats();
  EXPECT_LE(s.bytes, cache.budget_bytes());
  EXPECT_EQ(s.bytes, s.entries * entry_bytes);
  EXPECT_GT(defined_hits.load(), 0);
  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(s.hits + s.misses, snap.counter("serve.cache_hits") +
                                   snap.counter("serve.cache_misses"));
}

TEST(FeatureCacheServiceTest, FourWorkersShareOneCache) {
  FaultGuard guard;
  const core::YolloConfig cfg = tiny_config();
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  Rng rng(123);
  core::YolloModel model(cfg, vocab.size(), rng);
  model.set_training(false);

  ServeConfig scfg;
  scfg.num_workers = 4;
  scfg.queue_capacity = 64;
  scfg.batch_max = 4;
  scfg.feature_cache_mb = 16;
  InferenceService service(model, vocab, scfg);

  // 48 requests over 3 distinct images: whichever worker populated an
  // image's entry, the others must hit it.
  std::vector<std::future<GroundResponse>> futures;
  for (int i = 0; i < 48; ++i) {
    GroundRequest req;
    req.image = image(cfg.img_h, cfg.img_w, static_cast<uint64_t>(i % 3));
    req.query = "red circle";
    futures.push_back(service.submit(std::move(req)));
  }
  int answered = 0;
  for (auto& f : futures) {
    if (f.get().status.answered()) ++answered;
  }
  EXPECT_EQ(answered, 48);

  const ServiceCounters c = service.counters();
  EXPECT_GE(c.cache_hits + c.cache_misses, 48);
  EXPECT_GE(c.cache_hits, 1);  // repeats must not all miss
  testing::expect_serve_invariant(c);
}

// --- scenario table (config-map fixture from test_util.h) -------------------

class CacheScenarioTest
    : public ::testing::TestWithParam<testing::ServeScenario> {};

TEST_P(CacheScenarioTest, CacheCountersMatchScenario) {
  FaultGuard guard;
  const testing::ServeScenario& scenario = GetParam();
  const core::YolloConfig cfg = tiny_config();
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  Rng rng(123);
  core::YolloModel model(cfg, vocab.size(), rng);
  model.set_training(false);

#ifdef YOLLO_TSAN_BUILD
  constexpr int64_t kScale = 8;
#else
  constexpr int64_t kScale = 1;
#endif
  const testing::ServeScenarioOutcome out = testing::run_serve_scenario(
      model, vocab, /*fallback=*/nullptr, scenario, /*requests=*/24,
      /*distinct_images=*/4, kScale);

  if (scenario.warm_cache) {
    // Pre-warmed: every measured request's image is resident, so the run
    // must see hits (fault rows may re-miss after a degraded forward).
    EXPECT_GT(out.counters.cache_hits, 0) << scenario.name;
  } else {
    EXPECT_EQ(out.counters.cache_hits, 0) << scenario.name;
    EXPECT_EQ(out.counters.cache_bytes, 0) << scenario.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ServeScenarios, CacheScenarioTest,
    ::testing::ValuesIn(testing::serve_scenario_table()),
    [](const ::testing::TestParamInfo<yollo::testing::ServeScenario>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace yollo::serve
