// Property tests for the blocked GEMM runtime (DESIGN.md §10): every
// trans combination and fused epilogue against the retained naive
// reference kernel, batched entry points against per-slice products,
// parallel_for coverage/determinism, and gradchecks for the autograd ops
// rewritten onto the runtime (matmul backward, matmul_nt, fused linear).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "autograd/ops.h"
#include "tensor/conv.h"
#include "tensor/gemm.h"
#include "tensor/parallel.h"
#include "tensor/pool.h"
#include "tensor/random.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace yollo {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng) {
  Tensor t(shape);
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng.uniform(-1.0f, 1.0f);
  return t;
}

// Blocked and reference kernels accumulate in different orders, so the
// comparison budget grows (slowly) with the reduction length.
float tol_for_k(int64_t k) {
  return 1e-5f * (1.0f + std::sqrt(static_cast<float>(k)));
}

void expect_allclose(const float* want, const float* got, int64_t n,
                     float tol, const char* what) {
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_NEAR(want[i], got[i], tol + tol * std::fabs(want[i]))
        << what << " element " << i;
  }
}

void expect_tensors_close(const Tensor& want, const Tensor& got, float tol,
                          const char* what) {
  ASSERT_EQ(want.shape(), got.shape()) << what;
  expect_allclose(want.data(), got.data(), want.numel(), tol, what);
}

// Every size class the blocking scheme treats differently: degenerate 1s,
// odd/prime dims below one register tile, dims straddling MR=4/NR=16
// edges, and dims larger than the MC=128 / KC=256 cache blocks.
struct Dims {
  int64_t m, n, k;
};
const Dims kSizes[] = {
    {1, 1, 1},   {1, 7, 1},     {3, 1, 5},     {4, 16, 8},   {5, 5, 5},
    {7, 13, 11}, {17, 19, 23},  {31, 47, 29},  {40, 50, 300}, {129, 33, 37},
    {130, 61, 257}, {64, 272, 31},
};

// -- kernel vs reference ------------------------------------------------------

TEST(GemmKernel, MatchesReferenceForAllTransCombos) {
  Rng rng(1234);
  for (const Dims& d : kSizes) {
    for (int ta = 0; ta < 2; ++ta) {
      for (int tb = 0; tb < 2; ++tb) {
        const Tensor a = random_tensor(
            ta ? Shape{d.k, d.m} : Shape{d.m, d.k}, rng);
        const Tensor b = random_tensor(
            tb ? Shape{d.n, d.k} : Shape{d.k, d.n}, rng);
        // beta = 0 must fully overwrite C: seed both with a sentinel.
        std::vector<float> want(static_cast<size_t>(d.m * d.n), 777.0f);
        std::vector<float> got = want;
        gemm_reference(ta, tb, d.m, d.n, d.k, a.data(), b.data(),
                       want.data());
        gemm(ta, tb, d.m, d.n, d.k, a.data(), b.data(), got.data());
        SCOPED_TRACE("m=" + std::to_string(d.m) + " n=" + std::to_string(d.n) +
                     " k=" + std::to_string(d.k) + " ta=" + std::to_string(ta) +
                     " tb=" + std::to_string(tb));
        expect_allclose(want.data(), got.data(), d.m * d.n, tol_for_k(d.k),
                        "gemm");
      }
    }
  }
}

// Anchors the reference kernel itself (and the epilogue semantics) to an
// independent triple loop written out in the test, so kernel and reference
// cannot share a matched bug.
TEST(GemmKernel, ReferenceMatchesHandRolledLoopWithFullEpilogue) {
  const int64_t m = 5, n = 7, k = 3;
  Rng rng(99);
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  const Tensor bias = random_tensor({n}, rng);
  const Tensor row_bias = random_tensor({m}, rng);
  const Tensor c0 = random_tensor({m, n}, rng);

  GemmEpilogue ep;
  ep.beta = 0.5f;
  ep.bias = bias.data();
  ep.row_bias = row_bias.data();
  ep.relu = true;

  Tensor want = c0.clone();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      float v = ep.beta * c0[i * n + j] + acc + bias[j] + row_bias[i];
      want.data()[i * n + j] = v > 0.0f ? v : 0.0f;
    }
  }

  Tensor ref = c0.clone();
  gemm_reference(false, false, m, n, k, a.data(), b.data(), ref.data(), ep);
  expect_tensors_close(want, ref, 1e-6f, "reference");

  Tensor blocked = c0.clone();
  gemm(false, false, m, n, k, a.data(), b.data(), blocked.data(), ep);
  expect_tensors_close(want, blocked, 1e-6f, "blocked");
}

TEST(GemmKernel, FusedEpiloguesMatchReference) {
  Rng rng(77);
  const Dims cases[] = {{9, 21, 130}, {130, 61, 257}, {4, 16, 8}};
  for (const Dims& d : cases) {
    const Tensor a = random_tensor({d.m, d.k}, rng);
    const Tensor b = random_tensor({d.k, d.n}, rng);
    const Tensor bias = random_tensor({d.n}, rng);
    const Tensor row_bias = random_tensor({d.m}, rng);
    const Tensor c0 = random_tensor({d.m, d.n}, rng);

    struct Case {
      const char* name;
      GemmEpilogue ep;
    };
    std::vector<Case> cases_ep;
    cases_ep.push_back({"beta=1", {}});
    cases_ep.back().ep.beta = 1.0f;
    cases_ep.push_back({"beta=0.25", {}});
    cases_ep.back().ep.beta = 0.25f;
    cases_ep.push_back({"bias", {}});
    cases_ep.back().ep.bias = bias.data();
    cases_ep.push_back({"row_bias", {}});
    cases_ep.back().ep.row_bias = row_bias.data();
    cases_ep.push_back({"relu", {}});
    cases_ep.back().ep.relu = true;
    cases_ep.push_back({"bias+relu", {}});
    cases_ep.back().ep.bias = bias.data();
    cases_ep.back().ep.relu = true;
    cases_ep.push_back({"beta+row_bias+relu", {}});
    cases_ep.back().ep.beta = 1.0f;
    cases_ep.back().ep.row_bias = row_bias.data();
    cases_ep.back().ep.relu = true;

    for (const Case& c : cases_ep) {
      SCOPED_TRACE(std::string(c.name) + " m=" + std::to_string(d.m) +
                   " k=" + std::to_string(d.k));
      Tensor want = c0.clone();
      Tensor got = c0.clone();
      gemm_reference(false, false, d.m, d.n, d.k, a.data(), b.data(),
                     want.data(), c.ep);
      gemm(false, false, d.m, d.n, d.k, a.data(), b.data(), got.data(), c.ep);
      expect_tensors_close(want, got, tol_for_k(d.k), c.name);
      if (c.ep.relu) {
        for (int64_t i = 0; i < got.numel(); ++i) {
          ASSERT_GE(got[i], 0.0f) << "relu output " << i;
        }
      }
    }
  }
}

// -- tensor entry points ------------------------------------------------------

TEST(GemmTensor, WrapperAppliesLogicalTransposes) {
  Rng rng(5);
  const int64_t m = 19, n = 33, k = 130;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor bt = random_tensor({n, k}, rng);  // stored as op(B)ᵀ

  std::vector<float> want(static_cast<size_t>(m * n));
  gemm_reference(false, true, m, n, k, a.data(), bt.data(), want.data());

  const Tensor out = gemm(a, false, bt, true);
  ASSERT_EQ(out.shape(), (Shape{m, n}));
  expect_allclose(want.data(), out.data(), m * n, tol_for_k(k), "wrapper");

  EXPECT_THROW(gemm(a, false, bt, false), std::invalid_argument);
}

TEST(GemmTensor, BatchedMatmul3DMatchesPerSliceReference) {
  Rng rng(6);
  const int64_t batch = 3, m = 17, n = 21, k = 40;
  for (int ta = 0; ta < 2; ++ta) {
    for (int tb = 0; tb < 2; ++tb) {
      const Tensor a = random_tensor(
          ta ? Shape{batch, k, m} : Shape{batch, m, k}, rng);
      const Tensor b = random_tensor(
          tb ? Shape{batch, n, k} : Shape{batch, k, n}, rng);
      const Tensor out = batched_matmul(a, ta, b, tb);
      ASSERT_EQ(out.shape(), (Shape{batch, m, n}));
      for (int64_t bi = 0; bi < batch; ++bi) {
        std::vector<float> want(static_cast<size_t>(m * n));
        gemm_reference(ta, tb, m, n, k, a.data() + bi * m * k,
                       b.data() + bi * n * k, want.data());
        SCOPED_TRACE("ta=" + std::to_string(ta) + " tb=" + std::to_string(tb) +
                     " batch=" + std::to_string(bi));
        expect_allclose(want.data(), out.data() + bi * m * n, m * n,
                        tol_for_k(k), "batched");
      }
    }
  }
}

TEST(GemmTensor, BroadcastMatmulPacksSharedRhsOnce) {
  Rng rng(7);
  const int64_t batch = 4, m = 23, n = 31, k = 37;
  // !trans_a: the batch is collapsed into one GEMM (B packed once).
  const Tensor a = random_tensor({batch, m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  const Tensor out = batched_matmul(a, false, b, false);
  ASSERT_EQ(out.shape(), (Shape{batch, m, n}));
  for (int64_t bi = 0; bi < batch; ++bi) {
    std::vector<float> want(static_cast<size_t>(m * n));
    gemm_reference(false, false, m, n, k, a.data() + bi * m * k, b.data(),
                   want.data());
    expect_allclose(want.data(), out.data() + bi * m * n, m * n, tol_for_k(k),
                    "broadcast-nn");
  }
  // trans_a falls back to the per-batch path; same contract.
  const Tensor at = random_tensor({batch, k, m}, rng);
  const Tensor out_t = batched_matmul(at, true, b, false);
  ASSERT_EQ(out_t.shape(), (Shape{batch, m, n}));
  for (int64_t bi = 0; bi < batch; ++bi) {
    std::vector<float> want(static_cast<size_t>(m * n));
    gemm_reference(true, false, m, n, k, at.data() + bi * k * m, b.data(),
                   want.data());
    expect_allclose(want.data(), out_t.data() + bi * m * n, m * n,
                    tol_for_k(k), "broadcast-tn");
  }
}

TEST(GemmTensor, MatmulNtTnShorthands) {
  Rng rng(8);
  const int64_t m = 11, n = 13, k = 17;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({n, k}, rng);  // for a·bᵀ
  const Tensor c = random_tensor({m, n}, rng);  // for aᵀ·? no: tn below

  std::vector<float> want_nt(static_cast<size_t>(m * n));
  gemm_reference(false, true, m, n, k, a.data(), b.data(), want_nt.data());
  const Tensor nt = matmul_nt(a, b);
  expect_allclose(want_nt.data(), nt.data(), m * n, tol_for_k(k), "nt");

  const Tensor at = random_tensor({k, m}, rng);
  const Tensor bn = random_tensor({k, n}, rng);
  std::vector<float> want_tn(static_cast<size_t>(m * n));
  gemm_reference(true, false, m, n, k, at.data(), bn.data(), want_tn.data());
  const Tensor tn = matmul_tn(at, bn);
  expect_allclose(want_tn.data(), tn.data(), m * n, tol_for_k(k), "tn");
  (void)c;
}

TEST(GemmTensor, LinearForwardFusesBiasAndRelu) {
  Rng rng(9);
  const int64_t rows = 29, in = 130, out = 33;
  const Tensor x = random_tensor({rows, in}, rng);
  const Tensor w = random_tensor({in, out}, rng);
  const Tensor bias = random_tensor({out}, rng);

  GemmEpilogue ep;
  ep.bias = bias.data();
  ep.relu = true;
  Tensor want({rows, out});
  gemm_reference(false, false, rows, out, in, x.data(), w.data(), want.data(),
                 ep);
  const Tensor got = linear_forward(x, w, bias, /*relu=*/true);
  expect_tensors_close(want, got, tol_for_k(in), "linear fused");

  // Without bias tensor, plain product.
  Tensor want_nb({rows, out});
  gemm_reference(false, false, rows, out, in, x.data(), w.data(),
                 want_nb.data());
  const Tensor got_nb = linear_forward(x, w, Tensor());
  expect_tensors_close(want_nb, got_nb, tol_for_k(in), "linear plain");
}

// The rewritten conv forward writes fused GEMM results straight into the
// output slab; anchor it to a handwritten convolution.
TEST(GemmTensor, ConvForwardMatchesHandRolledConvolution) {
  Rng rng(10);
  Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 4;
  spec.kernel_h = spec.kernel_w = 3;
  spec.stride_h = spec.stride_w = 2;
  spec.pad_h = spec.pad_w = 1;
  const int64_t n = 2, h = 7, w = 9;
  const int64_t oh = spec.out_height(h), ow = spec.out_width(w);
  const Tensor x = random_tensor({n, spec.in_channels, h, w}, rng);
  const Tensor weight = random_tensor(
      {spec.out_channels, spec.in_channels, 3, 3}, rng);
  const Tensor bias = random_tensor({spec.out_channels}, rng);

  const Tensor got = conv2d_forward(x, weight, bias, spec);
  ASSERT_EQ(got.shape(), (Shape{n, spec.out_channels, oh, ow}));

  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t co = 0; co < spec.out_channels; ++co) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float acc = bias[co];
          for (int64_t ci = 0; ci < spec.in_channels; ++ci) {
            for (int64_t ky = 0; ky < 3; ++ky) {
              for (int64_t kx = 0; kx < 3; ++kx) {
                const int64_t iy = oy * spec.stride_h - spec.pad_h + ky;
                const int64_t ix = ox * spec.stride_w - spec.pad_w + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                acc += x[((ni * spec.in_channels + ci) * h + iy) * w + ix] *
                       weight[((co * spec.in_channels + ci) * 3 + ky) * 3 +
                              kx];
              }
            }
          }
          const float g =
              got[((ni * spec.out_channels + co) * oh + oy) * ow + ox];
          ASSERT_NEAR(acc, g, 1e-4f)
              << "n=" << ni << " co=" << co << " oy=" << oy << " ox=" << ox;
        }
      }
    }
  }
}

// -- parallel_for -------------------------------------------------------------

class ThreadGuard {
 public:
  ThreadGuard() : saved_(num_threads()) {}
  ~ThreadGuard() { set_num_threads(saved_); }

 private:
  int saved_;
};

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadGuard guard;
  for (int threads : {1, 4}) {
    set_num_threads(threads);
    for (int64_t begin : {0, 3}) {
      const int64_t end = 1000;
      std::vector<int> hits(static_cast<size_t>(end), 0);
      parallel_for(begin, end, 7, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
      });
      for (int64_t i = 0; i < end; ++i) {
        ASSERT_EQ(hits[static_cast<size_t>(i)], i >= begin ? 1 : 0)
            << "threads=" << threads << " begin=" << begin << " i=" << i;
      }
    }
    // Empty and single-grain ranges are fine.
    bool ran = false;
    parallel_for(5, 5, 1, [&](int64_t, int64_t) { ran = true; });
    EXPECT_FALSE(ran);
    int64_t total = 0;
    parallel_for(0, 3, 100, [&](int64_t lo, int64_t hi) { total += hi - lo; });
    EXPECT_EQ(total, 3);
  }
}

TEST(ParallelFor, GemmIsBitwiseDeterministicAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(11);
  const int64_t m = 130, n = 61, k = 257;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);

  set_num_threads(1);
  const Tensor c1 = gemm(a, false, b, false);
  set_num_threads(4);
  const Tensor c4 = gemm(a, false, b, false);
  ASSERT_EQ(c1.shape(), c4.shape());
  ASSERT_EQ(std::memcmp(c1.data(), c4.data(),
                        sizeof(float) * static_cast<size_t>(c1.numel())),
            0)
      << "1-thread and 4-thread GEMM differ bitwise";
}

TEST(ParallelFor, ConvIsBitwiseDeterministicAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(12);
  Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 8;
  const Tensor x = random_tensor({2, 3, 16, 16}, rng);
  const Tensor weight = random_tensor({8, 3, 3, 3}, rng);
  const Tensor bias = random_tensor({8}, rng);

  set_num_threads(1);
  const Tensor y1 = conv2d_forward(x, weight, bias, spec);
  const Conv2dGrads g1 = conv2d_backward(x, weight, true, y1, spec);
  set_num_threads(4);
  const Tensor y4 = conv2d_forward(x, weight, bias, spec);
  const Conv2dGrads g4 = conv2d_backward(x, weight, true, y4, spec);

  auto same = [](const Tensor& p, const Tensor& q) {
    return p.shape() == q.shape() &&
           std::memcmp(p.data(), q.data(),
                       sizeof(float) * static_cast<size_t>(p.numel())) == 0;
  };
  EXPECT_TRUE(same(y1, y4));
  EXPECT_TRUE(same(g1.grad_input, g4.grad_input));
  EXPECT_TRUE(same(g1.grad_weight, g4.grad_weight));
  EXPECT_TRUE(same(g1.grad_bias, g4.grad_bias));
}

// -- autograd on the new runtime ----------------------------------------------

TEST(GemmAutograd, MatmulBackwardGradcheck2D) {
  Rng rng(13);
  std::vector<ag::Variable> leaves = {
      ag::Variable::param(random_tensor({3, 4}, rng)),
      ag::Variable::param(random_tensor({4, 5}, rng))};
  testing::check_gradients(
      [](std::vector<ag::Variable>& v) {
        return ag::sum(ag::matmul(v[0], v[1]));
      },
      leaves);
}

TEST(GemmAutograd, MatmulBackwardGradcheck3D) {
  Rng rng(14);
  std::vector<ag::Variable> leaves = {
      ag::Variable::param(random_tensor({2, 3, 4}, rng)),
      ag::Variable::param(random_tensor({2, 4, 5}, rng))};
  testing::check_gradients(
      [](std::vector<ag::Variable>& v) {
        return ag::sum(ag::matmul(v[0], v[1]));
      },
      leaves);
}

TEST(GemmAutograd, MatmulNtGradcheck) {
  Rng rng(15);
  std::vector<ag::Variable> leaves = {
      ag::Variable::param(random_tensor({2, 3, 4}, rng)),
      ag::Variable::param(random_tensor({2, 5, 4}, rng))};
  testing::check_gradients(
      [](std::vector<ag::Variable>& v) {
        // Square the product so both branches of the backward get a
        // non-uniform upstream gradient.
        return ag::sum(ag::square(ag::matmul_nt(v[0], v[1])));
      },
      leaves);
}

TEST(GemmAutograd, LinearGradcheckWithBias) {
  Rng rng(16);
  std::vector<ag::Variable> leaves = {
      ag::Variable::param(random_tensor({4, 3}, rng)),
      ag::Variable::param(random_tensor({3, 5}, rng)),
      ag::Variable::param(random_tensor({5}, rng))};
  testing::check_gradients(
      [](std::vector<ag::Variable>& v) {
        return ag::sum(ag::square(ag::linear(v[0], v[1], v[2])));
      },
      leaves);
}

TEST(GemmAutograd, LinearGradcheckFusedRelu) {
  Rng rng(17);
  Tensor x = random_tensor({4, 3}, rng);
  Tensor w = random_tensor({3, 5}, rng);
  Tensor b = random_tensor({5}, rng);
  // Finite differences break at the ReLU kink: nudge any pre-activation
  // sitting within eps of zero away from it.
  Tensor pre = linear_forward(x, w, b);
  for (int64_t j = 0; j < 5; ++j) {
    for (int64_t i = 0; i < 4; ++i) {
      if (std::fabs(pre[i * 5 + j]) < 0.05f) {
        b.data()[j] += 0.1f;
        pre = linear_forward(x, w, b);
        i = -1;  // recheck the column
      }
    }
  }
  std::vector<ag::Variable> leaves = {ag::Variable::param(x),
                                      ag::Variable::param(w),
                                      ag::Variable::param(b)};
  testing::check_gradients(
      [](std::vector<ag::Variable>& v) {
        return ag::sum(
            ag::square(ag::linear(v[0], v[1], v[2], /*fuse_relu=*/true)));
      },
      leaves);
}

TEST(GemmAutograd, LinearGradcheckNoBias) {
  Rng rng(18);
  std::vector<ag::Variable> leaves = {
      ag::Variable::param(random_tensor({4, 3}, rng)),
      ag::Variable::param(random_tensor({3, 5}, rng))};
  testing::check_gradients(
      [](std::vector<ag::Variable>& v) {
        return ag::sum(ag::square(ag::linear(v[0], v[1], ag::Variable())));
      },
      leaves);
}

// -- pool reuse ---------------------------------------------------------------

TEST(GemmPool, ConvBuffersAreRecycledInsideAPoolScope) {
  Rng rng(19);
  Conv2dSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 16;
  const Tensor x = random_tensor({2, 8, 16, 16}, rng);
  const Tensor weight = random_tensor({16, 8, 3, 3}, rng);
  const Tensor bias = random_tensor({16}, rng);

  PoolScope scope;
  Tensor first = conv2d_forward(x, weight, bias, spec);
  Conv2dGrads g = conv2d_backward(x, weight, true, first, spec);
  const int64_t hits_after_warmup = scope.stats().hits;
  Tensor second = conv2d_forward(x, weight, bias, spec);
  g = conv2d_backward(x, weight, true, second, spec);
  EXPECT_GT(scope.stats().hits, hits_after_warmup)
      << "second conv step should reuse the first step's im2col/packing "
         "buffers";
  expect_tensors_close(first, second, 0.0f, "pooled conv repeat");
}

}  // namespace
}  // namespace yollo
