// Fault-tolerance subsystem tests: versioned/CRC serialisation, atomic
// checkpoint rotation, crash-during-save, resume-after-kill, and
// NaN-divergence recovery — the failure scenarios a production training run
// must survive.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "nn/layers.h"
#include "optim/optim.h"
#include "runtime/checkpoint.h"
#include "runtime/fault.h"
#include "tensor/serialize.h"
#include "word2vec/word2vec.h"

namespace yollo {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void flip_byte(const std::string& path, size_t offset) {
  std::string bytes = read_file(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x5A);
  write_file(path, bytes);
}

void truncate_file(const std::string& path, size_t keep) {
  std::string bytes = read_file(path);
  ASSERT_LT(keep, bytes.size());
  write_file(path, bytes.substr(0, keep));
}

// A guard that always leaves the process-wide injector disarmed.
struct FaultGuard {
  FaultGuard() { runtime::FaultInjector::instance().reset(); }
  ~FaultGuard() { runtime::FaultInjector::instance().reset(); }
};

// --- versioned serialisation --------------------------------------------------

TEST(SerializationTest, CorruptPayloadByteRejectedByCrc) {
  Rng rng(1);
  nn::FFN a(3, 5, 2, rng), b(3, 5, 2, rng);
  const std::string path = ::testing::TempDir() + "/crc_params.bin";
  nn::save_parameters(a, path);
  flip_byte(path, 40);  // past the 20-byte header: payload corruption
  EXPECT_THROW(nn::load_parameters(b, path), std::runtime_error);
}

TEST(SerializationTest, TruncatedFileRejected) {
  Rng rng(2);
  nn::FFN a(3, 5, 2, rng), b(3, 5, 2, rng);
  const std::string path = ::testing::TempDir() + "/trunc_params.bin";
  nn::save_parameters(a, path);
  truncate_file(path, read_file(path).size() / 2);
  EXPECT_THROW(nn::load_parameters(b, path), std::runtime_error);
}

TEST(SerializationTest, NewerFormatVersionRejected) {
  Rng rng(3);
  nn::FFN a(3, 5, 2, rng), b(3, 5, 2, rng);
  const std::string path = ::testing::TempDir() + "/future_params.bin";
  nn::save_parameters(a, path);
  std::string bytes = read_file(path);
  const uint32_t future = nn::kParamsVersion + 7;
  std::memcpy(bytes.data() + 4, &future, sizeof(future));
  write_file(path, bytes);
  EXPECT_THROW(nn::load_parameters(b, path), std::runtime_error);
}

TEST(SerializationTest, LegacyHeaderlessParamsFileLoads) {
  Rng rng(4);
  nn::FFN a(3, 5, 2, rng), b(3, 5, 2, rng);
  // Hand-write the pre-versioning format: param count, then numel + raw
  // floats per tensor, no buffer section, no header, no CRC.
  const std::string path = ::testing::TempDir() + "/legacy_params.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const auto params = a.parameters();
    const int64_t count = static_cast<int64_t>(params.size());
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (ag::Variable* p : params) {
      const int64_t n = p->numel();
      out.write(reinterpret_cast<const char*>(&n), sizeof(n));
      out.write(reinterpret_cast<const char*>(p->value().data()),
                static_cast<std::streamsize>(n * sizeof(float)));
    }
  }
  EXPECT_FALSE(nn::load_parameters(b, path));  // no buffer section
  ag::Variable x = ag::Variable::constant(Tensor::randn({2, 3}, rng));
  EXPECT_TRUE(allclose(a.forward(x).value(), b.forward(x).value()));
}

TEST(SerializationTest, LegacyHeaderlessEmbeddingsFileLoads) {
  Rng rng(5);
  const Tensor emb = Tensor::randn({7, 4}, rng);
  const std::string path = ::testing::TempDir() + "/legacy_emb.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const int64_t rows = emb.size(0), cols = emb.size(1);
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(emb.data()),
              static_cast<std::streamsize>(emb.numel() * sizeof(float)));
  }
  const Tensor back = word2vec::load_embeddings(path);
  EXPECT_TRUE(allclose(back, emb));
}

// --- Adam state round-trip ----------------------------------------------------

TEST(AdamStateTest, SaveLoadRoundTripsBitExact) {
  Rng rng(6);
  // Two parameter sets with identical values, two optimisers.
  const Tensor w0 = Tensor::randn({4, 3}, rng);
  ag::Variable pa = ag::Variable::param(w0.clone());
  ag::Variable pb = ag::Variable::param(w0.clone());
  optim::Adam a({&pa}, 0.01f);
  optim::Adam b({&pb}, 0.01f);

  auto drive = [](ag::Variable& p, optim::Adam& opt, int steps) {
    for (int i = 0; i < steps; ++i) {
      opt.zero_grad();
      ag::Variable loss = ag::sum(ag::square(p));
      loss.backward();
      opt.step();
    }
  };
  // Advance `a` alone, then copy its full state into `b`.
  drive(pa, a, 5);
  io::PayloadWriter writer;
  a.save_state(writer);
  pb.value().copy_from(pa.value());
  {
    const std::string path = ::testing::TempDir() + "/adam_state.bin";
    writer.commit(path, 0x7357u, 1);
    io::PayloadReader reader(path, 0x7357u, 1);
    b.load_state(reader);
  }
  EXPECT_EQ(b.step_count(), a.step_count());

  // Bias correction and moment decay now match: further updates agree
  // bit-for-bit.
  drive(pa, a, 3);
  drive(pb, b, 3);
  for (int64_t i = 0; i < pa.numel(); ++i) {
    ASSERT_EQ(pa.value()[i], pb.value()[i]) << "element " << i;
  }
}

TEST(AdamStateTest, LoadRejectsMismatchedShape) {
  Rng rng(7);
  ag::Variable pa = ag::Variable::param(Tensor::randn({4, 3}, rng));
  ag::Variable pb = ag::Variable::param(Tensor::randn({2, 2}, rng));
  optim::Adam a({&pa}, 0.01f);
  optim::Adam b({&pb}, 0.01f);
  io::PayloadWriter writer;
  a.save_state(writer);
  const std::string path = ::testing::TempDir() + "/adam_bad.bin";
  writer.commit(path, 0x7357u, 1);
  io::PayloadReader reader(path, 0x7357u, 1);
  EXPECT_THROW(b.load_state(reader), std::runtime_error);
}

// --- checkpoint rotation & crash safety ---------------------------------------

int64_t saved_step(const runtime::CheckpointManager& mgr, nn::Module& model,
                   optim::Adam& adam, std::string* which = nullptr) {
  runtime::TrainState state;
  EXPECT_TRUE(mgr.load_latest(model, adam, state, which));
  return state.step;
}

TEST(CheckpointTest, RotationKeepsLatestAndPrevious) {
  Rng rng(8);
  nn::FFN model(3, 5, 2, rng);
  optim::Adam adam(model.parameters(), 0.01f);
  runtime::CheckpointManager mgr(::testing::TempDir() + "/ckpt_rot");

  runtime::TrainState state;
  state.step = 10;
  mgr.save(model, adam, state);
  state.step = 20;
  mgr.save(model, adam, state);

  EXPECT_EQ(saved_step(mgr, model, adam), 20);
  runtime::TrainState prev;
  runtime::CheckpointManager::load_file(mgr.previous_path(), model, adam,
                                        prev);
  EXPECT_EQ(prev.step, 10);
}

TEST(CheckpointTest, CorruptLatestFallsBackToPrevious) {
  Rng rng(9);
  nn::FFN model(3, 5, 2, rng);
  optim::Adam adam(model.parameters(), 0.01f);
  runtime::CheckpointManager mgr(::testing::TempDir() + "/ckpt_corrupt");

  runtime::TrainState state;
  state.step = 10;
  mgr.save(model, adam, state);
  state.step = 20;
  mgr.save(model, adam, state);
  flip_byte(mgr.latest_path(), 64);  // corrupt the newest checkpoint

  std::string which;
  EXPECT_EQ(saved_step(mgr, model, adam, &which), 10);
  EXPECT_EQ(which, mgr.previous_path());
}

TEST(CheckpointTest, CrashDuringSaveLeavesLastGoodCheckpoint) {
  FaultGuard guard;
  Rng rng(10);
  nn::FFN model(3, 5, 2, rng);
  optim::Adam adam(model.parameters(), 0.01f);
  runtime::CheckpointManager mgr(::testing::TempDir() + "/ckpt_crash");

  runtime::TrainState state;
  state.step = 10;
  mgr.save(model, adam, state);

  runtime::FaultInjector::Config faults;
  faults.crash_write_after_bytes = 128;  // die mid-payload
  runtime::FaultInjector::instance().configure(faults);
  state.step = 20;
  EXPECT_THROW(mgr.save(model, adam, state), runtime::InjectedFault);
  runtime::FaultInjector::instance().reset();

  // The interrupted save never reached the rotation: step 10 is intact.
  EXPECT_EQ(saved_step(mgr, model, adam), 10);
}

// --- end-to-end fault tolerance -----------------------------------------------

data::DatasetConfig tiny_dataset_config(uint64_t seed) {
  data::DatasetConfig dc = data::DatasetConfig::synthref(40, seed);
  dc.img_h = 48;
  dc.img_w = 72;
  return dc;
}

core::TrainConfig tiny_train_config() {
  core::TrainConfig tc;
  tc.epochs = 1000;
  tc.max_steps = 30;
  tc.batch_size = 8;
  tc.log_every = 1;
  return tc;
}

std::unique_ptr<core::YolloModel> tiny_model(
    const data::GroundingDataset& dataset, const data::Vocab& vocab) {
  core::BuildOptions options;
  options.config.num_rel2att = 1;
  options.pretrain_embeddings = false;
  return core::build_yollo(dataset, vocab, options);
}

TEST(FaultToleranceTest, KilledRunResumesBitExact) {
  FaultGuard guard;
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(tiny_dataset_config(90), vocab);

  // Reference: uninterrupted 30-step run.
  core::TrainConfig tc = tiny_train_config();
  tc.checkpoint_dir = ::testing::TempDir() + "/resume_ref";
  tc.checkpoint_every = 10;
  auto ref_model = tiny_model(dataset, vocab);
  const core::TrainResult ref =
      core::train_yollo(*ref_model, dataset.train(), tc);
  ASSERT_EQ(ref.steps, 30);

  // Same run, killed by an injected fault at step 25 — between the
  // checkpoints at 20 and 30.
  tc.checkpoint_dir = ::testing::TempDir() + "/resume_kill";
  auto killed_model = tiny_model(dataset, vocab);
  runtime::FaultInjector::Config faults;
  faults.halt_at_step = 25;
  runtime::FaultInjector::instance().configure(faults);
  EXPECT_THROW(core::train_yollo(*killed_model, dataset.train(), tc),
               runtime::InjectedFault);
  runtime::FaultInjector::instance().reset();

  // Resume in a fresh process stand-in: new model object, resume=true.
  tc.resume = true;
  auto resumed_model = tiny_model(dataset, vocab);
  const core::TrainResult resumed =
      core::train_yollo(*resumed_model, dataset.train(), tc);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.start_step, 20);  // latest intact checkpoint
  EXPECT_EQ(resumed.steps, 30);

  // The resumed curve must match the uninterrupted run's curve point for
  // point over the replayed range — resumption is bit-exact.
  for (const core::CurvePoint& point : resumed.curve) {
    const auto it =
        std::find_if(ref.curve.begin(), ref.curve.end(),
                     [&](const core::CurvePoint& r) {
                       return r.step == point.step;
                     });
    ASSERT_NE(it, ref.curve.end()) << "step " << point.step;
    EXPECT_FLOAT_EQ(point.total, it->total) << "step " << point.step;
    EXPECT_FLOAT_EQ(point.att, it->att) << "step " << point.step;
  }
  EXPECT_FLOAT_EQ(resumed.final_loss, ref.final_loss);
}

TEST(FaultToleranceTest, ResumeFallsBackWhenLatestCheckpointCorrupt) {
  FaultGuard guard;
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(tiny_dataset_config(91), vocab);

  core::TrainConfig tc = tiny_train_config();
  tc.max_steps = 20;
  tc.checkpoint_dir = ::testing::TempDir() + "/resume_fallback";
  tc.checkpoint_every = 10;
  auto model = tiny_model(dataset, vocab);
  core::train_yollo(*model, dataset.train(), tc);

  // Corrupt `latest` (step 20); CRC must reject it and resume from
  // `previous` (step 10).
  runtime::CheckpointManager mgr(tc.checkpoint_dir);
  flip_byte(mgr.latest_path(), 100);

  tc.resume = true;
  tc.max_steps = 30;
  auto resumed_model = tiny_model(dataset, vocab);
  const core::TrainResult resumed =
      core::train_yollo(*resumed_model, dataset.train(), tc);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.start_step, 10);
  EXPECT_EQ(resumed.steps, 30);
  EXPECT_TRUE(std::isfinite(resumed.final_loss));
}

TEST(FaultToleranceTest, NanLossSkippedAndRolledBack) {
  FaultGuard guard;
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(tiny_dataset_config(92), vocab);

  core::TrainConfig tc = tiny_train_config();
  tc.max_steps = 20;
  tc.checkpoint_dir = ::testing::TempDir() + "/nan_recovery";
  tc.checkpoint_every = 5;
  tc.divergence_patience = 2;

  runtime::FaultInjector::Config faults;
  faults.poison_loss_at_step = 8;
  faults.poison_count = 2;  // two consecutive NaN steps -> rollback fires
  runtime::FaultInjector::instance().configure(faults);

  auto model = tiny_model(dataset, vocab);
  const core::TrainResult result =
      core::train_yollo(*model, dataset.train(), tc);
  runtime::FaultInjector::instance().reset();

  EXPECT_EQ(result.steps, 20);
  EXPECT_EQ(result.skipped_steps, 2);
  EXPECT_EQ(result.rollbacks, 1);
  EXPECT_TRUE(std::isfinite(result.final_loss));
  // No NaN ever reached the parameters: every logged loss is finite.
  for (const core::CurvePoint& point : result.curve) {
    EXPECT_TRUE(std::isfinite(point.total)) << "step " << point.step;
  }
}

TEST(FaultToleranceTest, NanWithoutCheckpointIsSkippedNotFatal) {
  FaultGuard guard;
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(tiny_dataset_config(93), vocab);

  core::TrainConfig tc = tiny_train_config();
  tc.max_steps = 15;  // no checkpoint_dir: guard can only skip

  runtime::FaultInjector::Config faults;
  faults.poison_loss_at_step = 4;
  faults.poison_count = 3;
  runtime::FaultInjector::instance().configure(faults);

  auto model = tiny_model(dataset, vocab);
  const core::TrainResult result =
      core::train_yollo(*model, dataset.train(), tc);
  runtime::FaultInjector::instance().reset();

  EXPECT_EQ(result.steps, 15);
  EXPECT_EQ(result.skipped_steps, 3);
  EXPECT_EQ(result.rollbacks, 0);
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

// --- satellite: eval / recalibrate restore the caller's mode ------------------

TEST(TrainerModeTest, EvaluateRestoresCallersMode) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(tiny_dataset_config(94), vocab);
  auto model = tiny_model(dataset, vocab);

  model->set_training(false);
  core::evaluate_yollo(*model, dataset.val(), 8);
  EXPECT_FALSE(model->training()) << "eval-mode caller must stay in eval";

  model->set_training(true);
  core::evaluate_yollo(*model, dataset.val(), 8);
  EXPECT_TRUE(model->training()) << "training-mode caller must stay training";
}

TEST(TrainerModeTest, RecalibrateBatchnormRestoresCallersMode) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(tiny_dataset_config(95), vocab);
  auto model = tiny_model(dataset, vocab);

  model->set_training(false);
  core::recalibrate_batchnorm(*model, dataset.train(), 2, 8);
  EXPECT_FALSE(model->training());

  model->set_training(true);
  core::recalibrate_batchnorm(*model, dataset.train(), 2, 8);
  EXPECT_TRUE(model->training());
}

}  // namespace
}  // namespace yollo
