// Tests for evaluation metrics and reporting.
#include <fstream>

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace yollo::eval {
namespace {

using vision::Box;

std::vector<Prediction> three_preds() {
  // IoUs: 1.0 (exact), ~0.53 (shifted), 0.0 (disjoint).
  return {
      {Box{0, 0, 10, 10}, Box{0, 0, 10, 10}},
      {Box{3, 0, 10, 10}, Box{0, 0, 10, 10}},
      {Box{50, 50, 5, 5}, Box{0, 0, 10, 10}},
  };
}

TEST(MetricsTest, AccuracyAtThresholds) {
  const auto preds = three_preds();
  EXPECT_DOUBLE_EQ(accuracy_at(preds, 0.5f), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy_at(preds, 0.75f), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy_at(preds, 0.95f), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy_at({}, 0.5f), 0.0);
}

TEST(MetricsTest, CocoStyleAccuracyAveragesThresholdSweep) {
  // A single exact prediction scores 1 at every threshold.
  const std::vector<Prediction> perfect = {{Box{0, 0, 4, 4}, Box{0, 0, 4, 4}}};
  EXPECT_NEAR(coco_style_accuracy(perfect), 1.0, 1e-9);
  // IoU ~0.53 passes only eta = 0.5 (1 of 10 thresholds).
  const std::vector<Prediction> mid = {{Box{3, 0, 10, 10}, Box{0, 0, 10, 10}}};
  EXPECT_NEAR(coco_style_accuracy(mid), 0.1, 1e-9);
}

TEST(MetricsTest, MeanIouAndRow) {
  const auto preds = three_preds();
  const double miou = mean_iou(preds);
  EXPECT_GT(miou, 0.4);
  EXPECT_LT(miou, 0.6);
  const MetricRow row = compute_metrics(preds);
  EXPECT_DOUBLE_EQ(row.acc50, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(row.acc75, 1.0 / 3.0);
  EXPECT_NEAR(row.miou, miou, 1e-12);
  EXPECT_LE(row.acc, row.acc50);  // averaged sweep can't beat ACC@0.5
}

TEST(MetricsTest, AccuracyMonotonicInThreshold) {
  const auto preds = three_preds();
  double prev = 1.0;
  for (float eta = 0.5f; eta <= 0.95f; eta += 0.05f) {
    const double acc = accuracy_at(preds, eta);
    EXPECT_LE(acc, prev);
    prev = acc;
  }
}

TEST(TimingTest, StopwatchMeasuresForward) {
  Stopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(watch.elapsed_seconds(), 0.0);
  EXPECT_LT(watch.elapsed_seconds(), 5.0);
}

TEST(TimingTest, TimePerCallAverages) {
  int calls = 0;
  const double per_call = time_per_call([&] { ++calls; }, 10, 2);
  EXPECT_EQ(calls, 12);  // warmup + timed
  EXPECT_GE(per_call, 0.0);
}

TEST(ReporterTest, RowWidthValidated) {
  TableReporter reporter({"a", "b"});
  EXPECT_THROW(reporter.add_row({"only-one"}), std::invalid_argument);
  reporter.add_row({"1", "2"});  // ok
}

TEST(ReporterTest, CsvRoundTrip) {
  TableReporter reporter({"model", "acc"});
  reporter.add_row({"yollo", "91.63"});
  reporter.add_row({"listener", "63.43"});
  const std::string path = ::testing::TempDir() + "/report.csv";
  reporter.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "model,acc");
  std::getline(in, line);
  EXPECT_EQ(line, "yollo,91.63");
  std::getline(in, line);
  EXPECT_EQ(line, "listener,63.43");
}

TEST(ReporterTest, FmtPrecision) {
  EXPECT_EQ(fmt(91.634, 2), "91.63");
  EXPECT_EQ(fmt(0.5, 1), "0.5");
  EXPECT_EQ(fmt(3.0, 0), "3");
}

}  // namespace
}  // namespace yollo::eval
