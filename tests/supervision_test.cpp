// Cancellation + supervision tests (DESIGN.md §13): the ExecContext
// contract (arm / cancel / generation pinning / deadline self-cancel), the
// kernel checkpoint behaviour, the typed kCancelled / kResourceExhausted
// outcomes out of YolloModel::infer, the StoragePool byte budget, and the
// serving layer built on top of them — in-flight deadline aborts, client
// CancelTokens, the watchdog kick -> grace -> reap state machine with
// worker replacement, and the five-term accounting invariant
//
//   served + rejected + deadline_exceeded + failed + cancelled == submitted
//
// held in every concurrent snapshot. Closes with the disabled-path
// guardband: a checkpoint with no context installed must stay within the
// same overhead band the obs hooks are held to.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/matcher.h"
#include "baseline/proposer.h"
#include "core/yollo.h"
#include "runtime/fault.h"
#include "serve/service.h"
#include "tensor/exec.h"
#include "tensor/gemm.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

// TSan slows real forward passes ~15x while injected wall-clock delays stay
// fixed; stretch the latency constants of the timing-sensitive tests so
// their ratios survive the race detector.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define YOLLO_SUPERVISION_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define YOLLO_SUPERVISION_TSAN 1
#endif

namespace yollo::serve {
namespace {

#ifdef YOLLO_SUPERVISION_TSAN
constexpr int kTimeScale = 8;
#else
constexpr int kTimeScale = 1;
#endif

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// The process-wide injector must stay disarmed around every test; faults
// are armed through scoped per-service injectors.
struct FaultGuard {
  FaultGuard() { runtime::FaultInjector::instance().reset(); }
  ~FaultGuard() { runtime::FaultInjector::instance().reset(); }
};

core::YolloConfig tiny_config() {
  core::YolloConfig cfg;
  cfg.img_h = 32;
  cfg.img_w = 48;
  cfg.max_query_len = 6;
  cfg.num_rel2att = 1;
  return cfg;
}

struct Harness {
  data::Vocab vocab = data::Vocab::grounding_vocab();
  core::YolloConfig cfg = tiny_config();
  Rng rng{123};
  core::YolloModel model{cfg, vocab.size(), rng};

  baseline::ProposerConfig pcfg;
  std::unique_ptr<baseline::RegionProposalNetwork> rpn;
  std::unique_ptr<baseline::ListenerMatcher> listener;
  std::unique_ptr<baseline::SpeakerMatcher> speaker;
  std::unique_ptr<baseline::TwoStagePipeline> pipeline;

  Harness() {
    model.set_training(false);
    pcfg.img_h = cfg.img_h;
    pcfg.img_w = cfg.img_w;
    pcfg.max_proposals = 8;
    Rng prng(7);
    rpn = std::make_unique<baseline::RegionProposalNetwork>(pcfg, prng);
    rpn->set_training(false);
    baseline::MatcherConfig mcfg;
    mcfg.patch = 16;
    mcfg.emb_dim = 16;
    mcfg.word_dim = 16;
    mcfg.vocab_size = vocab.size();
    listener = std::make_unique<baseline::ListenerMatcher>(mcfg, prng);
    listener->set_training(false);
    speaker = std::make_unique<baseline::SpeakerMatcher>(mcfg, prng);
    speaker->set_training(false);
    pipeline = std::make_unique<baseline::TwoStagePipeline>(
        *rpn, *listener, *speaker, baseline::MatchMode::kListener);
  }

  Tensor image(uint64_t seed = 5) {
    Rng r(seed);
    return Tensor::rand({3, cfg.img_h, cfg.img_w}, r);
  }

  GroundRequest request(uint64_t seed = 5) {
    GroundRequest req;
    req.image = image(seed);
    req.query = "red circle";
    return req;
  }

  std::vector<int64_t> tokens() {
    return std::vector<int64_t>(static_cast<size_t>(cfg.max_query_len), 1);
  }
};

void expect_invariant(const ServiceCounters& c) {
  EXPECT_EQ(c.served + c.rejected + c.deadline_exceeded + c.failed +
                c.cancelled,
            c.submitted);
  EXPECT_LE(c.degraded, c.served);
  EXPECT_LE(c.rejected_invalid + c.rejected_overloaded + c.rejected_resource,
            c.rejected);
}

// --- ExecContext ------------------------------------------------------------

TEST(ExecContextTest, CancelSetsCauseOnceAndStampsTime) {
  ExecContext ctx;
  ctx.arm();
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_EQ(ctx.cancel_time_ns(), 0);

  EXPECT_TRUE(ctx.cancel(CancelCause::kCancelled));
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_EQ(ctx.cause(), CancelCause::kCancelled);
  EXPECT_GT(ctx.cancel_time_ns(), 0);

  // First cause wins: a later deadline trip cannot overwrite it.
  EXPECT_FALSE(ctx.cancel(CancelCause::kDeadlineExceeded));
  EXPECT_EQ(ctx.cause(), CancelCause::kCancelled);
}

TEST(ExecContextTest, ArmClearsCancelAndAdvancesGeneration) {
  ExecContext ctx;
  ctx.arm();
  const uint64_t gen = ctx.generation();
  ctx.cancel(CancelCause::kCancelled);
  ctx.arm();
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_EQ(ctx.cause(), CancelCause::kNone);
  EXPECT_EQ(ctx.cancel_time_ns(), 0);
  EXPECT_EQ(ctx.generation(), gen + 1);
}

TEST(ExecContextTest, StaleGenerationCancelIsDeclined) {
  ExecContext ctx;
  ctx.arm();
  const uint64_t stale = ctx.generation();
  ctx.arm();  // the unit of work the canceller observed is gone
  EXPECT_FALSE(ctx.cancel_if_generation(stale, CancelCause::kCancelled));
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_TRUE(
      ctx.cancel_if_generation(ctx.generation(), CancelCause::kCancelled));
  EXPECT_TRUE(ctx.cancelled());
}

TEST(ExecContextTest, CheckpointBumpsHeartbeatAndSelfCancelsOnDeadline) {
  ExecContext ctx;
  ctx.arm();  // no deadline
  const uint64_t hb = ctx.heartbeats();
  EXPECT_FALSE(ctx.checkpoint());
  EXPECT_EQ(ctx.heartbeats(), hb + 1);

  ctx.arm(ExecContext::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(ctx.checkpoint());
  EXPECT_EQ(ctx.cause(), CancelCause::kDeadlineExceeded);
  EXPECT_GT(ctx.cancel_time_ns(), 0);
}

TEST(ExecContextTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(ExecContext::current(), nullptr);
  ExecContext outer;
  ExecContext inner;
  {
    ExecContext::Scope a(&outer);
    EXPECT_EQ(ExecContext::current(), &outer);
    {
      ExecContext::Scope b(&inner);
      EXPECT_EQ(ExecContext::current(), &inner);
    }
    EXPECT_EQ(ExecContext::current(), &outer);
  }
  EXPECT_EQ(ExecContext::current(), nullptr);
}

TEST(ExecContextTest, ThrowIfCancelledThrowsTypedCause) {
  ExecContext ctx;
  ctx.arm();
  EXPECT_NO_THROW(ctx.throw_if_cancelled());
  ctx.cancel(CancelCause::kDeadlineExceeded);
  try {
    ctx.throw_if_cancelled();
    FAIL() << "expected ExecCancelled";
  } catch (const ExecCancelled& e) {
    EXPECT_EQ(e.cause(), CancelCause::kDeadlineExceeded);
  }
}

// --- kernel checkpoints -----------------------------------------------------

TEST(ExecContextTest, PreCancelledGemmAbandonsBeforeTouchingOutput) {
  constexpr int64_t kM = 96, kN = 96, kK = 64;
  std::vector<float> a(kM * kK, 1.0f);
  std::vector<float> b(kK * kN, 1.0f);
  std::vector<float> c(kM * kN, 7.5f);  // sentinel

  ExecContext ctx;
  ctx.arm();
  ctx.cancel(CancelCause::kCancelled);
  {
    ExecContext::Scope scope(&ctx);
    gemm(false, false, kM, kN, kK, a.data(), b.data(), c.data(), {});
  }
  // The (jc, pc) checkpoint fires before any packing or micro-kernel work:
  // the output is exactly as the caller left it.
  for (size_t i = 0; i < c.size(); ++i) {
    ASSERT_FLOAT_EQ(c[i], 7.5f) << "index " << i;
  }
  // Without a cancelled context the same call computes normally.
  gemm(false, false, kM, kN, kK, a.data(), b.data(), c.data(), {});
  EXPECT_FLOAT_EQ(c[0], static_cast<float>(kK));
}

// --- typed infer outcomes ---------------------------------------------------

TEST(InferCancellationTest, ExpiredDeadlineYieldsCancelledOutcome) {
  Harness h;
  ExecContext ctx;
  ctx.arm(ExecContext::Clock::now() - std::chrono::milliseconds(1));
  ExecContext::Scope scope(&ctx);
  const Tensor batched = h.image().reshape({1, 3, h.cfg.img_h, h.cfg.img_w});
  const auto outcome = h.model.infer(batched, h.tokens());
  EXPECT_EQ(outcome.error, core::YolloModel::InferError::kCancelled);
  EXPECT_TRUE(outcome.boxes.empty());
  EXPECT_EQ(ctx.cause(), CancelCause::kDeadlineExceeded);
}

TEST(InferCancellationTest, CrossThreadCancelAbortsForwardWithinBound) {
  Harness h;
  ExecContext ctx;
  ctx.arm();
  ExecContext::Scope scope(&ctx);
  const Tensor batched = h.image().reshape({1, 3, h.cfg.img_h, h.cfg.img_w});

  // One uncancelled forward calibrates nothing — the bound below is
  // absolute: after the cancel lands, the forward may run at most a small
  // multiple of a checkpoint interval, far below a full pass worth of work.
  std::atomic<int64_t> cancelled_at_ms{0};
  const Clock::time_point t0 = Clock::now();
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ctx.cancel(CancelCause::kCancelled);
    cancelled_at_ms.store(static_cast<int64_t>(ms_since(t0)));
  });
  const auto outcome = h.model.infer(batched, h.tokens());
  const double done_ms = ms_since(t0);
  canceller.join();

  if (outcome.error == core::YolloModel::InferError::kNone) {
    // The tiny forward beat the 2ms fuse — legal, nothing to bound.
    return;
  }
  EXPECT_EQ(outcome.error, core::YolloModel::InferError::kCancelled);
  // Signal -> abort within a generous checkpoint-latency bound (the tiny
  // model's full pass is itself short; the point is the forward did not
  // run to completion plus epsilon after the signal).
  EXPECT_LT(done_ms - static_cast<double>(cancelled_at_ms.load()),
            250.0 * kTimeScale);
}

TEST(InferCancellationTest, TinyPoolBudgetYieldsResourceExhausted) {
  Harness h;
  PoolScope pool;
  pool.set_budget_bytes(64 * 1024);  // far below one forward's working set
  const Tensor batched = h.image().reshape({1, 3, h.cfg.img_h, h.cfg.img_w});
  const auto outcome = h.model.infer(batched, h.tokens());
  EXPECT_EQ(outcome.error, core::YolloModel::InferError::kResourceExhausted);
  EXPECT_TRUE(outcome.boxes.empty());
  EXPECT_GT(pool.stats().budget_rejected, 0);
}

// --- pool budget ------------------------------------------------------------

TEST(PoolBudgetTest, RejectsAtTheCapAndTrimRecovers) {
  PoolScope pool;
  constexpr int64_t kBlock = 128 * 1024;  // floats: 512 KiB per tensor
  constexpr int64_t kBlockBytes = kBlock * static_cast<int64_t>(sizeof(float));
  pool.set_budget_bytes(2 * kBlockBytes);
  EXPECT_EQ(pool.outstanding_bytes(), 0);

  auto a = std::make_unique<Tensor>(Shape{kBlock});
  auto b = std::make_unique<Tensor>(Shape{kBlock});
  EXPECT_EQ(pool.outstanding_bytes(), 2 * kBlockBytes);
  EXPECT_THROW(Tensor{Shape{kBlock}}, PoolBudgetExceeded);
  EXPECT_EQ(pool.stats().budget_rejected, 1);

  // Releasing parks the buffers on the free list: their bytes stay
  // attributed to the pool.
  a.reset();
  b.reset();
  EXPECT_EQ(pool.outstanding_bytes(), 2 * kBlockBytes);
  // A same-size request is served off the free list (a hit, already
  // counted) without re-checking the budget...
  { Tensor reuse{Shape{kBlock}}; }
  EXPECT_GE(pool.stats().hits, 1);
  // ...but a fresh-size miss is still rejected against the parked bytes.
  EXPECT_THROW(Tensor{Shape{2 * kBlock}}, PoolBudgetExceeded);
  EXPECT_EQ(pool.stats().budget_rejected, 2);

  // trim() hands the parked bytes back to the allocator; the budget now
  // admits the larger allocation.
  pool.trim();
  EXPECT_EQ(pool.outstanding_bytes(), 0);
  EXPECT_NO_THROW(Tensor{Shape{2 * kBlock}});
}

TEST(PoolBudgetTest, ExceptionCarriesTheAccounting) {
  PoolScope pool;
  pool.set_budget_bytes(1024);
  try {
    Tensor big({100000});
    FAIL() << "expected PoolBudgetExceeded";
  } catch (const PoolBudgetExceeded& e) {
    EXPECT_EQ(e.budget_bytes, 1024);
    EXPECT_EQ(e.requested_bytes,
              100000 * static_cast<int64_t>(sizeof(float)));
    EXPECT_GE(e.outstanding_bytes, 0);
  }
}

// --- service: in-flight deadline aborts -------------------------------------

TEST(SupervisionServiceTest, DeadlineAbortsSlowForwardInFlight) {
  FaultGuard guard;
  Harness h;
  runtime::FaultInjector injector;
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 600 * kTimeScale;
  fc.slow_forward_count = 1;
  injector.configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.max_retries = 0;
  sc.fault_injector = &injector;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  GroundRequest req = h.request();
  req.deadline_ms = 50 * kTimeScale;
  const Clock::time_point t0 = Clock::now();
  const GroundResponse response = service.ground(std::move(req));
  const double elapsed = ms_since(t0);

  EXPECT_EQ(response.status.code, StatusCode::kDeadlineExceeded)
      << response.status.to_string();
  // The worker was freed mid-sleep: well under the injected 600ms, i.e.
  // within a small multiple of the checkpoint/slice interval past the
  // 50ms deadline.
  EXPECT_LT(elapsed, 300.0 * kTimeScale)
      << "cancellation did not abort the slow forward";

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.submitted, 1);
  EXPECT_EQ(c.deadline_exceeded, 1);
  expect_invariant(c);

  // The cancel->observed latency histogram recorded the abort.
  const obs::MetricsSnapshot snap = service.metrics_snapshot();
  const auto* cancel_hist = snap.histogram("serve.cancel_latency_ms");
  ASSERT_NE(cancel_hist, nullptr);
  EXPECT_GE(cancel_hist->count, 1);
}

TEST(SupervisionServiceTest, DisabledCancellationRunsTheFullSlowForward) {
  FaultGuard guard;
  Harness h;
  runtime::FaultInjector injector;
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 300 * kTimeScale;
  fc.slow_forward_count = 1;
  injector.configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.max_retries = 0;
  sc.enable_cancellation = false;  // PR-2 observe-only behaviour
  sc.fault_injector = &injector;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  GroundRequest req = h.request();
  req.deadline_ms = 50 * kTimeScale;
  const Clock::time_point t0 = Clock::now();
  const GroundResponse response = service.ground(std::move(req));
  const double elapsed = ms_since(t0);

  // Still answered with the typed deadline verdict — but only after the
  // full injected sleep, because nothing could interrupt the forward.
  EXPECT_EQ(response.status.code, StatusCode::kDeadlineExceeded)
      << response.status.to_string();
  EXPECT_GE(elapsed, 0.9 * 300.0 * kTimeScale);
  expect_invariant(service.counters());
}

// --- service: client cancel tokens ------------------------------------------

TEST(SupervisionServiceTest, CancelTokenAbortsInFlightAndQueued) {
  FaultGuard guard;
  Harness h;
  runtime::FaultInjector injector;
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 500 * kTimeScale;
  fc.slow_forward_count = 1;  // only the first (in-flight) request is slow
  injector.configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.batch_max = 1;
  sc.max_retries = 0;
  sc.fault_injector = &injector;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  GroundRequest in_flight = h.request();
  in_flight.cancel = std::make_shared<CancelToken>();
  auto token_a = in_flight.cancel;
  std::future<GroundResponse> fa = service.submit(std::move(in_flight));

  GroundRequest queued = h.request();
  queued.cancel = std::make_shared<CancelToken>();
  auto token_b = queued.cancel;
  std::future<GroundResponse> fb = service.submit(std::move(queued));

  // Give the worker time to start the slow forward, then cancel both: A
  // mid-forward, B while still queued behind it.
  std::this_thread::sleep_for(std::chrono::milliseconds(40 * kTimeScale));
  const Clock::time_point t0 = Clock::now();
  token_a->cancel();
  token_b->cancel();
  EXPECT_TRUE(token_a->requested());

  const GroundResponse ra = fa.get();
  const GroundResponse rb = fb.get();
  const double elapsed = ms_since(t0);
  EXPECT_EQ(ra.status.code, StatusCode::kCancelled)
      << ra.status.to_string();
  EXPECT_EQ(rb.status.code, StatusCode::kCancelled)
      << rb.status.to_string();
  EXPECT_LT(elapsed, 300.0 * kTimeScale)
      << "cancel did not abort the in-flight forward";

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.submitted, 2);
  EXPECT_EQ(c.cancelled, 2);
  expect_invariant(c);
}

TEST(SupervisionServiceTest, LateCancelAfterCompletionIsHarmless) {
  FaultGuard guard;
  Harness h;
  ServeConfig sc;
  sc.num_workers = 1;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  GroundRequest req = h.request();
  req.cancel = std::make_shared<CancelToken>();
  auto token = req.cancel;
  const GroundResponse response = service.ground(std::move(req));
  EXPECT_TRUE(response.status.ok()) << response.status.to_string();

  // The token's pinned generation is stale: this cancel must not poison
  // the worker's next request.
  token->cancel();
  const GroundResponse next = service.ground(h.request());
  EXPECT_TRUE(next.status.ok()) << next.status.to_string();

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.served, 2);
  EXPECT_EQ(c.cancelled, 0);
  expect_invariant(c);
}

// --- service: watchdog ------------------------------------------------------

TEST(SupervisionWatchdogTest, KickCancelsAStalledButCancellableWorker) {
  FaultGuard guard;
  Harness h;
  runtime::FaultInjector injector;
  runtime::FaultInjector::Config fc;
  // The sliced slow sleep polls the context but never bumps heartbeats:
  // exactly a busy worker making no progress, but still cancellable.
  fc.slow_forward_ms = 5000;
  fc.slow_forward_count = 1;
  injector.configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.max_retries = 0;
  sc.watchdog_interval_ms = 20;
  sc.watchdog_stall_intervals = 2;
  sc.watchdog_grace_intervals = 1000;  // never reap in this test
  sc.fault_injector = &injector;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  const Clock::time_point t0 = Clock::now();
  const GroundResponse response = service.ground(h.request());
  const double elapsed = ms_since(t0);

  EXPECT_EQ(response.status.code, StatusCode::kCancelled)
      << response.status.to_string();
  EXPECT_LT(elapsed, 2500.0) << "watchdog kick did not abort the stall";

  const ServiceCounters c = service.counters();
  EXPECT_GE(c.watchdog_kicks, 1);
  EXPECT_EQ(c.cancelled, 1);
  EXPECT_EQ(c.workers_lost, 0);
  expect_invariant(c);
}

TEST(SupervisionWatchdogTest, WedgedWorkerIsReapedAndReplaced) {
  FaultGuard guard;
  Harness h;
  runtime::FaultInjector injector;
  runtime::FaultInjector::Config fc;
  // Uninterruptible stall: no checkpoint ever observes the kick, so the
  // watchdog must escalate to reap. Bounded so stop() can join the thread.
  fc.wedge_forward_ms = 1200;
  fc.wedge_forward_count = 1;
  injector.configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.max_retries = 0;
  sc.watchdog_interval_ms = 20;
  sc.watchdog_stall_intervals = 1;
  sc.watchdog_grace_intervals = 2;
  sc.fault_injector = &injector;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  const Clock::time_point t0 = Clock::now();
  const GroundResponse wedged = service.ground(h.request());
  const double elapsed = ms_since(t0);

  // The request did not wait out the 1200ms wedge: the watchdog declared
  // the worker lost and failed it.
  EXPECT_EQ(wedged.status.code, StatusCode::kInternalError)
      << wedged.status.to_string();
  EXPECT_LT(elapsed, 1000.0) << "reap did not pre-empt the wedge";

  // The replacement worker serves the next request while the wedged thread
  // is still sleeping.
  const GroundResponse next = service.ground(h.request());
  EXPECT_TRUE(next.status.answered()) << next.status.to_string();

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.workers_lost, 1);
  EXPECT_EQ(c.workers_spawned, 1);
  EXPECT_GE(c.failed, 1);
  expect_invariant(c);
  EXPECT_GE(service.health().workers, 1);
}

// --- service: pool budget degradation ---------------------------------------

TEST(SupervisionServiceTest, PoolBudgetDegradesToBaselineTier) {
  FaultGuard guard;
  Harness h;
  ServeConfig sc;
  sc.num_workers = 1;
  sc.max_retries = 1;
  sc.pool_budget_mb = 1;  // far below the model tier's working set
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  const GroundResponse response = service.ground(h.request());
  // The model tier was refused by the budget; the baseline tier (plain
  // allocations, no pooled working set of that size) answers degraded.
  EXPECT_EQ(response.status.code, StatusCode::kDegraded)
      << response.status.to_string();

  const ServiceCounters c = service.counters();
  EXPECT_GE(c.pool_rejected, 1);
  EXPECT_EQ(c.served, 1);
  EXPECT_EQ(c.degraded, 1);
  EXPECT_EQ(c.breaker_trips, 0);  // memory pressure must not trip the breaker
  expect_invariant(c);
}

// --- stress: cancellation + supervision under concurrent load ---------------

TEST(SupervisionStressTest, MixedCancellationLoadKeepsInvariantCoherent) {
  FaultGuard guard;
  Harness h;
  runtime::FaultInjector injector;
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 30 * kTimeScale;
  fc.slow_forward_count = 24;  // a poisoned minority of the forwards stall
  injector.configure(fc);

  ServeConfig sc;
  sc.num_workers = 3;
  sc.queue_capacity = 64;
  sc.batch_max = 2;
  sc.max_retries = 0;
  sc.breaker_threshold = 1000;
  sc.watchdog_interval_ms = 25;
  sc.watchdog_stall_intervals = 3;
  sc.watchdog_grace_intervals = 1000;  // kicks allowed, reaps not needed
  sc.fault_injector = &injector;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  // Concurrent snapshot poller: in every cut, terminal counts never exceed
  // submissions and each subset stays within its superset.
  std::atomic<bool> stop_poller{false};
  std::thread poller([&] {
    while (!stop_poller.load()) {
      const ServiceCounters c = service.counters();
      EXPECT_LE(c.served + c.rejected + c.deadline_exceeded + c.failed +
                    c.cancelled,
                c.submitted);
      EXPECT_LE(c.degraded, c.served);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  std::vector<std::thread> clients;
  std::atomic<int> resolved{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        GroundRequest req = h.request(static_cast<uint64_t>(t * 100 + i));
        std::shared_ptr<CancelToken> token;
        if (i % 3 == 0) {
          // A deadline tight enough to cancel a poisoned slow forward.
          req.deadline_ms = 15 * kTimeScale;
        } else if (i % 3 == 1) {
          token = std::make_shared<CancelToken>();
          req.cancel = token;
        }
        std::future<GroundResponse> f = service.submit(std::move(req));
        if (token != nullptr && i % 2 == 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(2 * kTimeScale));
          token->cancel();
        }
        const GroundResponse r = f.get();
        // Every request terminates in exactly one typed status; answered
        // ones carry a finite box.
        if (r.status.answered()) {
          EXPECT_TRUE(std::isfinite(r.box.x) && std::isfinite(r.box.w));
        }
        ++resolved;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop_poller.store(true);
  poller.join();

  EXPECT_EQ(resolved.load(), kThreads * kPerThread);
  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.submitted, kThreads * kPerThread);
  expect_invariant(c);
  EXPECT_EQ(c.workers_lost, 0);
  service.stop();
  expect_invariant(service.counters());
}

// --- disabled-path overhead guardband ---------------------------------------
// With no ExecContext installed, a checkpoint poll is one thread_local load
// plus a null-check — held to the same guardband the obs hooks are.

uint64_t xorshift_step(uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

__attribute__((noinline)) uint64_t loop_plain(int64_t iters, uint64_t x) {
  for (int64_t i = 0; i < iters; ++i) x = xorshift_step(x);
  return x;
}

__attribute__((noinline)) uint64_t loop_checkpointed(int64_t iters,
                                                     uint64_t x) {
  for (int64_t i = 0; i < iters; ++i) {
    ExecContext* ctx = ExecContext::current();
    if (ctx != nullptr && ctx->checkpoint()) break;
    x = xorshift_step(x);
  }
  return x;
}

TEST(SupervisionOverhead, UninstalledCheckpointStaysWithinGuardband) {
#ifdef YOLLO_SUPERVISION_TSAN
  // TSan intercepts the thread_local access, inflating it far past the
  // guardband; the overhead claim is about production builds.
  GTEST_SKIP() << "disabled-path overhead is not meaningful under TSan";
#endif
  ASSERT_EQ(ExecContext::current(), nullptr);
  constexpr int64_t kIters = 2000000;
  constexpr int kReps = 5;
  double best_plain = 1e300;
  double best_instr = 1e300;
  uint64_t sink = 0x2545f4914f6cdd1dULL;
  for (int rep = 0; rep < kReps; ++rep) {
    Clock::time_point t0 = Clock::now();
    sink = loop_plain(kIters, sink);
    const double plain = ms_since(t0);
    t0 = Clock::now();
    sink = loop_checkpointed(kIters, sink);
    const double instr = ms_since(t0);
    best_plain = std::min(best_plain, plain);
    best_instr = std::min(best_instr, instr);
  }
  EXPECT_NE(sink, 0u);
  // Same guardband as the obs disabled-span test: may not double the loop,
  // plus 2ms absolute slack so tiny bases do not flake.
  EXPECT_LE(best_instr, best_plain * 2.0 + 2.0)
      << "plain " << best_plain << " ms vs checkpointed " << best_instr
      << " ms over " << kIters << " iterations";
}

}  // namespace
}  // namespace yollo::serve
