// Sharded router tests: consistent-hash ring stability, health-aware
// routing, failover on shard failure, hedged-request dedup, drain/probe
// (half-open) shard recovery, and a chaos run that kills a shard mid-flight
// while a concurrent poller asserts the router accounting invariant
//
//   served + rejected + deadline_exceeded + failed == submitted
//
// stays coherent in every snapshot and zero requests are lost.
//
// Deterministic tests pin requests to a known shard via image_id (the ring
// is static; only shard *state* changes rotation) and use per-shard scoped
// FaultInjector instances so chaos hits exactly one replica set.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/matcher.h"
#include "baseline/proposer.h"
#include "runtime/fault.h"
#include "serve/router.h"
#include "serve/service.h"

// TSan slows real forward passes ~15x while injected wall-clock delays
// (slow_forward_ms) stay fixed, which silently inverts the ratios the
// timing tests rely on (injected delay >> real forward << deadline).
// Stretch every latency constant under TSan so the ratios survive.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define YOLLO_TSAN_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define YOLLO_TSAN_BUILD 1
#endif

namespace yollo::serve {
namespace {

#ifdef YOLLO_TSAN_BUILD
constexpr int kTimeScale = 8;
#else
constexpr int kTimeScale = 1;
#endif

// The process-wide injector must stay disarmed around every test (scoped
// shard injectors are armed explicitly where a test wants chaos).
struct FaultGuard {
  FaultGuard() { runtime::FaultInjector::instance().reset(); }
  ~FaultGuard() { runtime::FaultInjector::instance().reset(); }
};

core::YolloConfig tiny_config() {
  core::YolloConfig cfg;
  cfg.img_h = 32;
  cfg.img_w = 48;
  cfg.max_query_len = 6;
  cfg.num_rel2att = 1;
  return cfg;
}

struct RouterHarness {
  data::Vocab vocab = data::Vocab::grounding_vocab();
  core::YolloConfig cfg = tiny_config();
  Rng rng{123};
  core::YolloModel model{cfg, vocab.size(), rng};

  baseline::ProposerConfig pcfg;
  std::unique_ptr<baseline::RegionProposalNetwork> rpn;
  std::unique_ptr<baseline::ListenerMatcher> listener;
  std::unique_ptr<baseline::SpeakerMatcher> speaker;
  std::unique_ptr<baseline::TwoStagePipeline> pipeline;

  RouterHarness() {
    model.set_training(false);
    pcfg.img_h = cfg.img_h;
    pcfg.img_w = cfg.img_w;
    pcfg.max_proposals = 8;
    Rng prng(7);
    rpn = std::make_unique<baseline::RegionProposalNetwork>(pcfg, prng);
    rpn->set_training(false);
    baseline::MatcherConfig mcfg;
    mcfg.patch = 16;
    mcfg.emb_dim = 16;
    mcfg.word_dim = 16;
    mcfg.vocab_size = vocab.size();
    listener = std::make_unique<baseline::ListenerMatcher>(mcfg, prng);
    listener->set_training(false);
    speaker = std::make_unique<baseline::SpeakerMatcher>(mcfg, prng);
    speaker->set_training(false);
    pipeline = std::make_unique<baseline::TwoStagePipeline>(
        *rpn, *listener, *speaker, baseline::MatchMode::kListener);
  }

  Tensor image(uint64_t seed = 5) {
    Rng r(seed);
    return Tensor::rand({3, cfg.img_h, cfg.img_w}, r);
  }

  RouteRequest request(const std::string& id,
                       const std::string& query = "red circle",
                       uint64_t seed = 5) {
    RouteRequest req;
    req.image = image(seed);
    req.query = query;
    req.image_id = id;
    return req;
  }

  // A deterministic base config: health thread effectively frozen so shard
  // states only change when a test wants them to.
  RouterConfig frozen_config() {
    RouterConfig rc;
    rc.num_shards = 3;
    rc.shard.num_workers = 1;
    rc.shard.queue_capacity = 16;
    rc.shard.max_retries = 0;
    rc.shard.breaker_threshold = 1000;
    rc.health_interval_ms = 1000000;
    rc.shard_failure_threshold = 1000;
    rc.hedging = false;
    return rc;
  }
};

// An image_id the ring assigns to `shard` (ring placement is deterministic).
std::string id_owned_by(const Router& router, int64_t shard) {
  for (int i = 0; i < 100000; ++i) {
    const std::string id = "img-" + std::to_string(i);
    if (router.ring_owner(HashRing::hash_key(id)) == shard) return id;
  }
  ADD_FAILURE() << "no key found for shard " << shard;
  return "";
}

void expect_invariant(const RouterCounters& c) {
  EXPECT_EQ(c.served + c.rejected + c.deadline_exceeded + c.failed,
            c.submitted);
  EXPECT_LE(c.degraded, c.served);
  EXPECT_LE(c.hedges_won, c.hedges_launched);
}

// --- hash ring --------------------------------------------------------------

TEST(HashRingTest, RemovingANodeRemapsOnlyItsOwnKeys) {
  HashRing ring(64);
  for (int64_t n = 0; n < 4; ++n) ring.add_node(n);

  constexpr int kKeys = 8000;
  std::map<int, int64_t> before;
  for (int k = 0; k < kKeys; ++k) {
    before[k] = ring.node_for(HashRing::hash_key("key-" + std::to_string(k)));
  }

  ring.remove_node(2);
  int remapped = 0;
  for (int k = 0; k < kKeys; ++k) {
    const int64_t now =
        ring.node_for(HashRing::hash_key("key-" + std::to_string(k)));
    EXPECT_NE(now, 2);
    if (before[k] == 2) {
      ++remapped;  // orphaned keys must land somewhere else
    } else {
      // The defining property: keys the removed node never owned DO NOT
      // move (a naive `hash % N` would reshuffle almost everything).
      EXPECT_EQ(now, before[k]) << "key " << k << " moved without cause";
    }
  }
  // ~1/4 of the key space belonged to node 2 (64 vnodes keeps the spread
  // reasonably even; wide tolerance keeps the test hash-stable).
  EXPECT_GT(remapped, kKeys / 10);
  EXPECT_LT(remapped, (kKeys * 45) / 100);

  // Re-adding the node restores the original assignment exactly: vnode
  // positions are pure functions of (node, replica).
  ring.add_node(2);
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(ring.node_for(HashRing::hash_key("key-" + std::to_string(k))),
              before[k]);
  }
}

TEST(HashRingTest, AddingANodeOnlyStealsKeys) {
  HashRing ring(64);
  for (int64_t n = 0; n < 4; ++n) ring.add_node(n);

  constexpr int kKeys = 8000;
  std::map<int, int64_t> before;
  for (int k = 0; k < kKeys; ++k) {
    before[k] = ring.node_for(HashRing::hash_key("key-" + std::to_string(k)));
  }

  ring.add_node(4);
  int stolen = 0;
  for (int k = 0; k < kKeys; ++k) {
    const int64_t now =
        ring.node_for(HashRing::hash_key("key-" + std::to_string(k)));
    if (now != before[k]) {
      // A key that moved may only have moved TO the new node; the old
      // nodes never trade keys among themselves.
      EXPECT_EQ(now, 4);
      ++stolen;
    }
  }
  // ~1/5 of the key space moves to the fifth node.
  EXPECT_GT(stolen, kKeys / 12);
  EXPECT_LT(stolen, (kKeys * 40) / 100);
}

TEST(HashRingTest, WalkVisitsEveryNodeOnceStartingAtOwner) {
  HashRing ring(32);
  for (int64_t n = 0; n < 5; ++n) ring.add_node(n);
  const uint64_t key = HashRing::hash_key("some-image");
  const std::vector<int64_t> order = ring.walk(key);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], ring.node_for(key));
  std::vector<int64_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (int64_t n = 0; n < 5; ++n) EXPECT_EQ(sorted[static_cast<size_t>(n)], n);
}

// --- routing basics ---------------------------------------------------------

TEST(RouterTest, ServesAndKeepsKeyAffinity) {
  FaultGuard guard;
  RouterHarness h;
  Router router(h.model, h.vocab, h.frozen_config(), h.pipeline.get());

  // Same image_id -> same shard, across repeats.
  const std::string id = id_owned_by(router, 1);
  for (int i = 0; i < 3; ++i) {
    const RouteResponse response = router.route(h.request(id));
    EXPECT_TRUE(response.status.ok()) << response.status.to_string();
    EXPECT_EQ(response.shard, 1);
    EXPECT_EQ(response.failovers, 0);
    EXPECT_FALSE(response.hedged);
  }
  // An empty image_id falls back to a content hash: the same pixels land on
  // the same shard both times.
  RouteRequest a = h.request("", "red circle", 9);
  RouteRequest b = h.request("", "red circle", 9);
  EXPECT_EQ(Router::key_for(a), Router::key_for(b));
  const RouteResponse ra = router.route(std::move(a));
  const RouteResponse rb = router.route(std::move(b));
  EXPECT_TRUE(ra.status.ok());
  EXPECT_EQ(ra.shard, rb.shard);

  const RouterCounters counters = router.counters();
  EXPECT_EQ(counters.submitted, 5);
  EXPECT_EQ(counters.served, 5);
  expect_invariant(counters);

  const RouterHealth health = router.health();
  EXPECT_TRUE(health.accepting);
  EXPECT_EQ(health.in_rotation, 3);
  ASSERT_EQ(health.shards.size(), 3u);
  for (const ShardHealth& shard : health.shards) {
    EXPECT_EQ(shard.state, ShardState::kActive);
    EXPECT_STREQ(shard_state_name(shard.state), "ACTIVE");
  }
}

TEST(RouterTest, InvalidInputIsTerminalWithoutFailover) {
  FaultGuard guard;
  RouterHarness h;
  Router router(h.model, h.vocab, h.frozen_config(), h.pipeline.get());

  const RouteResponse response = router.route(h.request("x", ""));
  EXPECT_EQ(response.status.code, StatusCode::kInvalidInput);
  EXPECT_EQ(response.failovers, 0);

  const RouterCounters counters = router.counters();
  EXPECT_EQ(counters.submitted, 1);
  EXPECT_EQ(counters.rejected, 1);
  EXPECT_EQ(counters.failovers, 0);
  expect_invariant(counters);
}

TEST(RouterTest, StopRejectsNewAndResolvesEverything) {
  FaultGuard guard;
  RouterHarness h;
  Router router(h.model, h.vocab, h.frozen_config(), h.pipeline.get());

  std::vector<std::future<RouteResponse>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(
        router.submit(h.request("img-" + std::to_string(i), "red circle",
                                static_cast<uint64_t>(i))));
  }
  router.stop();
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::minutes(2)),
              std::future_status::ready)
        << "a request was lost across stop()";
    EXPECT_TRUE(future.get().status.answered());
  }
  const RouteResponse late = router.route(h.request("late"));
  EXPECT_EQ(late.status.code, StatusCode::kOverloaded);
  expect_invariant(router.counters());
}

// --- failover ---------------------------------------------------------------

TEST(RouterTest, FailsOverWhenOwnerShardFails) {
  FaultGuard guard;
  RouterHarness h;
  RouterConfig rc = h.frozen_config();
  // No fallback tier: a faulted model answers kInternalError (retryable).
  Router router(h.model, h.vocab, rc, /*fallback=*/nullptr);

  const int64_t owner = 0;
  const std::string id = id_owned_by(router, owner);
  ASSERT_NE(router.shard_injector(owner), nullptr);
  runtime::FaultInjector::Config fc;
  fc.fail_forward_count = 1000;
  router.shard_injector(owner)->configure(fc);

  const RouteResponse response = router.route(h.request(id));
  EXPECT_TRUE(response.status.ok()) << response.status.to_string();
  EXPECT_NE(response.shard, owner);
  EXPECT_EQ(response.failovers, 1);

  const RouterCounters counters = router.counters();
  EXPECT_EQ(counters.served, 1);
  EXPECT_EQ(counters.failovers, 1);
  expect_invariant(counters);

  // A healthy shard's keys are untouched by shard 0's troubles.
  const std::string other = id_owned_by(router, 2);
  const RouteResponse healthy = router.route(h.request(other));
  EXPECT_TRUE(healthy.status.ok());
  EXPECT_EQ(healthy.shard, 2);
  EXPECT_EQ(healthy.failovers, 0);
}

TEST(RouterTest, AllShardsFailingYieldsTypedFailureNotAHang) {
  FaultGuard guard;
  RouterHarness h;
  Router router(h.model, h.vocab, h.frozen_config(), /*fallback=*/nullptr);

  runtime::FaultInjector::Config fc;
  fc.fail_forward_count = 1000;
  for (int64_t s = 0; s < router.num_shards(); ++s) {
    router.shard_injector(s)->configure(fc);
  }

  const RouteResponse response = router.route(h.request("doomed"));
  EXPECT_EQ(response.status.code, StatusCode::kInternalError);
  EXPECT_EQ(response.failovers, 2);  // tried every other shard once

  const RouterCounters counters = router.counters();
  EXPECT_EQ(counters.failed, 1);
  EXPECT_EQ(counters.failovers, 2);
  expect_invariant(counters);
}

// --- hedged retries ---------------------------------------------------------

TEST(RouterTest, HedgesWhenPrimaryP95ThreatensDeadline) {
  FaultGuard guard;
  RouterHarness h;
  RouterConfig rc = h.frozen_config();
  rc.hedging = true;
  rc.hedge_budget = 1.0;         // the budget is not the thing under test
  rc.health_interval_ms = 2;     // cache the slow shard's p95 quickly
  rc.drain_score = -1.0;         // ...but never drain anyone in this test
  Router router(h.model, h.vocab, rc, h.pipeline.get());

  const int64_t owner = 1;
  const std::string id = id_owned_by(router, owner);
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 400 * kTimeScale;
  fc.slow_forward_count = 100;
  router.shard_injector(owner)->configure(fc);

  // Prime the owner's latency histogram: two ~400ms requests put its p95 in
  // the 204.8..409.6ms bucket, far above the hedged request's budget.
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(router.route(h.request(id)).status.answered());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // 250ms of budget < ~400ms p95: the router must duplicate the request on
  // the ring successor; the healthy duplicate answers in milliseconds while
  // the primary is still sleeping. First answer wins.
  RouteRequest req = h.request(id);
  req.deadline_ms = 250 * kTimeScale;
  const RouteResponse response = router.route(std::move(req));
  EXPECT_TRUE(response.status.ok()) << response.status.to_string();
  EXPECT_TRUE(response.hedged);
  EXPECT_TRUE(response.hedge_won);
  EXPECT_NE(response.shard, owner);

  // First-wins dedup: the request is counted served exactly once even
  // though two shards answered it.
  const RouterCounters counters = router.counters();
  EXPECT_EQ(counters.submitted, 3);
  EXPECT_EQ(counters.served, 3);
  EXPECT_EQ(counters.hedges_launched, 1);
  EXPECT_EQ(counters.hedges_won, 1);
  expect_invariant(counters);
}

TEST(RouterTest, HedgeLoserIsCancelledAndAccountedAtTheShard) {
  FaultGuard guard;
  RouterHarness h;
  RouterConfig rc = h.frozen_config();
  rc.hedging = true;
  rc.hedge_budget = 1.0;
  rc.health_interval_ms = 2;
  rc.drain_score = -1.0;
  Router router(h.model, h.vocab, rc, h.pipeline.get());

  const int64_t owner = 1;
  const std::string id = id_owned_by(router, owner);
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 400 * kTimeScale;
  fc.slow_forward_count = 100;
  router.shard_injector(owner)->configure(fc);

  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(router.route(h.request(id)).status.answered());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  RouteRequest req = h.request(id);
  req.deadline_ms = 250 * kTimeScale;
  const RouteResponse response = router.route(std::move(req));
  EXPECT_TRUE(response.status.ok()) << response.status.to_string();
  EXPECT_TRUE(response.hedge_won);
  EXPECT_NE(response.shard, owner);

  // The winner's landing cancelled the loser's token: the primary attempt
  // on the owner aborts its slow forward instead of sleeping out the full
  // injected 400ms. Poll until the loser drains at the shard level.
  const auto resolve_by =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  ServiceCounters sc;
  for (;;) {
    sc = router.shard(owner).counters();
    if (sc.served + sc.rejected + sc.deadline_exceeded + sc.failed +
            sc.cancelled ==
        sc.submitted) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), resolve_by)
        << "hedge loser never resolved on the owner shard";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // 2 priming requests served + the losing primary attempt cancelled. The
  // cancel is a shard-local verdict: the router's own taxonomy never sees
  // it (the job was already served by the winner).
  EXPECT_EQ(sc.submitted, 3);
  EXPECT_EQ(sc.served, 2);
  EXPECT_EQ(sc.cancelled, 1);
  EXPECT_EQ(sc.deadline_exceeded, 0);

  const RouterCounters counters = router.counters();
  EXPECT_EQ(counters.hedges_launched, 1);
  EXPECT_EQ(counters.hedges_won, 1);
  EXPECT_EQ(counters.hedge_cancelled, 1);
  EXPECT_EQ(counters.served, 3);
  expect_invariant(counters);
}

TEST(RouterTest, HedgeBudgetCapsDuplicateLoad) {
  FaultGuard guard;
  RouterHarness h;
  RouterConfig rc = h.frozen_config();
  rc.hedging = true;
  rc.hedge_budget = 0.10;
  rc.health_interval_ms = 2;
  rc.drain_score = -1.0;
  Router router(h.model, h.vocab, rc, h.pipeline.get());

  const int64_t owner = 1;
  const std::string id = id_owned_by(router, owner);
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 300 * kTimeScale;
  fc.slow_forward_count = 2;  // only the priming requests are slow
  router.shard_injector(owner)->configure(fc);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(router.route(h.request(id)).status.answered());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Every request now sees p95 >> budget and would love a hedge; the 10%
  // budget must cap how many actually get one.
  constexpr int kRequests = 40;
  for (int i = 0; i < kRequests; ++i) {
    RouteRequest req = h.request(id);
    req.deadline_ms = 100 * kTimeScale;
    const RouteResponse response = router.route(std::move(req));
    EXPECT_TRUE(response.status.answered()) << response.status.to_string();
  }
  const RouterCounters counters = router.counters();
  EXPECT_LE(counters.hedges_launched,
            static_cast<int64_t>(0.10 * counters.submitted) + 1);
  expect_invariant(counters);
}

// --- drain / probe (shard-level half-open) ----------------------------------

TEST(RouterTest, DegradedShardIsDrainedProbedAndRestored) {
  FaultGuard guard;
  RouterHarness h;
  RouterConfig rc;
  rc.num_shards = 3;
  rc.shard.num_workers = 1;
  rc.shard.max_retries = 0;
  rc.shard.breaker_threshold = 1000;  // shard-level drain is the test
  rc.hedging = false;
  rc.health_interval_ms = 2;
  rc.shard_failure_threshold = 2;
  rc.drain_cooldown_ms = 10;
  rc.probe_interval_ms = 2;
  Router router(h.model, h.vocab, rc, /*fallback=*/nullptr);

  const int64_t owner = 2;
  const std::string id = id_owned_by(router, owner);
  runtime::FaultInjector::Config fc;
  fc.fail_forward_count = 1000;
  router.shard_injector(owner)->configure(fc);

  // Two failing answers trip the shard out of rotation (requests still
  // served by failover). Subsequent requests for its keys go elsewhere
  // without even touching it.
  for (int i = 0; i < 2; ++i) {
    const RouteResponse response = router.route(h.request(id));
    EXPECT_TRUE(response.status.ok()) << response.status.to_string();
    EXPECT_NE(response.shard, owner);
  }
  const auto drained_by = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
  while (router.counters().shards_drained < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), drained_by)
        << "shard was never drained";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Heal the shard and keep offering it its own traffic: the half-open
  // probes must bring it back, and its keys must come home (the ring never
  // changed, only the shard's state did).
  router.shard_injector(owner)->reset();
  const auto restored_by = std::chrono::steady_clock::now() +
                           std::chrono::seconds(30);
  while (router.counters().shards_restored < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), restored_by)
        << "shard was never probed back into rotation";
    EXPECT_TRUE(router.route(h.request(id)).status.answered());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto home_by = std::chrono::steady_clock::now() +
                       std::chrono::seconds(10);
  for (;;) {
    const RouteResponse response = router.route(h.request(id));
    EXPECT_TRUE(response.status.answered());
    if (response.shard == owner && response.status.ok()) break;
    ASSERT_LT(std::chrono::steady_clock::now(), home_by)
        << "keys never returned to the restored owner";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const RouterCounters counters = router.counters();
  EXPECT_GE(counters.probes_sent, 1);
  EXPECT_GE(counters.shards_restored, 1);
  expect_invariant(counters);
  const RouterHealth health = router.health();
  EXPECT_EQ(health.in_rotation, 3);
}

TEST(RouterTest, KilledShardStaysOutOfRotation) {
  FaultGuard guard;
  RouterHarness h;
  RouterConfig rc = h.frozen_config();
  rc.health_interval_ms = 2;
  rc.drain_cooldown_ms = 5;
  rc.probe_interval_ms = 2;
  Router router(h.model, h.vocab, rc, h.pipeline.get());

  const std::string id = id_owned_by(router, 0);
  router.kill_shard(0);

  const auto out_by =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (router.health().in_rotation != 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), out_by);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Its keys are served by the ring successors; a dead shard is never
  // probed back in (resume_admission refuses after stop()).
  for (int i = 0; i < 5; ++i) {
    const RouteResponse response = router.route(h.request(id));
    EXPECT_TRUE(response.status.ok()) << response.status.to_string();
    EXPECT_NE(response.shard, 0);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(router.health().in_rotation, 2);
  EXPECT_EQ(router.counters().shards_restored, 0);
  expect_invariant(router.counters());
}

// --- chaos: kill a shard mid-run, lose nothing ------------------------------

// Chaos load is env-tunable so the sanitizer script can crank it up:
// scripts/run_sanitized_tests.sh re-runs this suite under TSan with
// YOLLO_ROUTER_CHAOS_PER_THREAD=60 for a longer fault-injecting soak.
int chaos_per_thread() {
  if (const char* env = std::getenv("YOLLO_ROUTER_CHAOS_PER_THREAD")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0 && v <= 10000) return static_cast<int>(v);
  }
  return 30;
}

TEST(RouterChaosTest, ShardKilledMidRunLosesNoRequests) {
  FaultGuard guard;
  RouterHarness h;
  const int kPerThread = chaos_per_thread();
  constexpr int kThreads = 4;
  RouterConfig rc;
  rc.num_shards = 3;
  rc.shard.num_workers = 2;
  // Deep enough that the whole run fits in the surviving queues even under
  // TSan's ~10x slowdown — overload rejections are not this test's subject.
  rc.shard.queue_capacity = std::max<int64_t>(64, 2 * kPerThread + 8);
  rc.shard.max_retries = 1;
  rc.health_interval_ms = 2;
  rc.shard_failure_threshold = 3;
  rc.drain_cooldown_ms = 10;
  rc.hedging = true;
  rc.hedge_budget = 0.10;
  Router router(h.model, h.vocab, rc, h.pipeline.get());

  const char* queries[] = {"red circle", "the large square",
                           "blue thing on the left", "small green triangle"};

  // Concurrent snapshot poller: the extended invariant must hold (as a <=,
  // requests in flight) in EVERY observation, never over-counting.
  std::atomic<bool> poll_stop{false};
  std::atomic<int64_t> poll_violations{0};
  std::atomic<int64_t> polls{0};
  std::thread poller([&] {
    while (!poll_stop.load(std::memory_order_relaxed)) {
      const RouterCounters c = router.counters();
      const bool coherent =
          c.served + c.rejected + c.deadline_exceeded + c.failed <=
              c.submitted &&
          c.degraded <= c.served && c.hedges_won <= c.hedges_launched;
      if (!coherent) poll_violations.fetch_add(1);
      polls.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::vector<std::future<RouteResponse>>> futures(kThreads);
  std::vector<std::thread> clients;
  std::atomic<int> submitted_before_kill{0};
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        RouteRequest request;
        request.image = h.image(static_cast<uint64_t>(t * 1000 + i));
        request.query = queries[(t + i) % 4];
        request.image_id = "chaos-" + std::to_string(t) + "-" +
                           std::to_string(i);
        request.deadline_ms = 5000 * kTimeScale;
        futures[static_cast<size_t>(t)].push_back(
            router.submit(std::move(request)));
        submitted_before_kill.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  // Mid-run chaos: wait for real traffic, then kill one of the three
  // shards. kill_shard drains its queue (those requests are still answered
  // or failed over) and the health loop routes around the corpse.
  while (submitted_before_kill.load() < (kThreads * kPerThread) / 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  router.kill_shard(1);

  for (std::thread& client : clients) client.join();

  // Zero lost: every single future resolves with a typed status.
  int64_t answered = 0, rejected = 0, deadline = 0, failed = 0;
  for (auto& thread_futures : futures) {
    for (auto& future : thread_futures) {
      ASSERT_EQ(future.wait_for(std::chrono::minutes(5)),
                std::future_status::ready)
          << "a request was lost during the chaos run";
      const RouteResponse response = future.get();
      switch (response.status.code) {
        case StatusCode::kOk:
        case StatusCode::kDegraded:
          ++answered;
          break;
        case StatusCode::kInvalidInput:
        case StatusCode::kOverloaded:
          ++rejected;
          break;
        case StatusCode::kDeadlineExceeded:
          ++deadline;
          break;
        case StatusCode::kInternalError:
          ++failed;
          break;
      }
    }
  }
  poll_stop.store(true);
  poller.join();
  EXPECT_EQ(poll_violations.load(), 0)
      << "a concurrent snapshot caught the router accounting mid-update";
  EXPECT_GE(polls.load(), 1);
  router.stop();

  const RouterCounters counters = router.counters();
  EXPECT_EQ(counters.submitted, kThreads * kPerThread);
  expect_invariant(counters);
  EXPECT_EQ(counters.served, answered);
  EXPECT_EQ(counters.rejected, rejected);
  EXPECT_EQ(counters.deadline_exceeded, deadline);
  EXPECT_EQ(counters.failed, failed);
  // The fleet kept serving: the overwhelming majority of requests got real
  // answers despite a third of the capacity dying mid-run.
  EXPECT_GE(answered, (kThreads * kPerThread * 9) / 10);
  // And the dead shard really is out.
  EXPECT_EQ(router.health().in_rotation, 2);
}

// --- chaos: scoped poison hits one shard only -------------------------------

TEST(RouterChaosTest, PoisonedShardDegradesItsKeysOnly) {
  FaultGuard guard;
  RouterHarness h;
  RouterConfig rc = h.frozen_config();
  rc.shard.max_retries = 0;
  Router router(h.model, h.vocab, rc, h.pipeline.get());

  runtime::FaultInjector::Config fc;
  fc.poison_forward_count = 1000;
  router.shard_injector(0)->configure(fc);

  // Shard 0's keys degrade to the baseline tier (answered, typed); the
  // other shards' keys are full-quality — proof the poison is scoped.
  const std::string sick = id_owned_by(router, 0);
  const std::string well = id_owned_by(router, 1);
  for (int i = 0; i < 3; ++i) {
    const RouteResponse degraded = router.route(h.request(sick));
    EXPECT_EQ(degraded.status.code, StatusCode::kDegraded)
        << degraded.status.to_string();
    const RouteResponse ok = router.route(h.request(well));
    EXPECT_TRUE(ok.status.ok()) << ok.status.to_string();
  }
  const RouterCounters counters = router.counters();
  EXPECT_EQ(counters.served, 6);
  EXPECT_EQ(counters.degraded, 3);
  expect_invariant(counters);
}

}  // namespace
}  // namespace yollo::serve
