// Interactive grounding console — the paper's "virtual assistant" pitch as
// a REPL.
//
// Trains (or loads from ./bench_cache, when present) a YOLLO model, shows
// a scene as ASCII art, then grounds every line typed on stdin, printing
// the predicted box, the attention map, and the matched object. Type
// "next" for a fresh scene, "quit" to exit. Non-interactive runs (stdin at
// EOF, e.g. in CI) fall back to a scripted demo of three queries.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/trainer.h"
#include "example_util.h"
#include "data/renderer.h"
#include "serve/validation.h"

using namespace yollo;

namespace {

// Coarse ASCII rendering of the scene with object letters.
void print_scene(const data::Scene& scene) {
  const int64_t cols = 48, rows = 16;
  std::vector<std::string> canvas(rows, std::string(cols, '.'));
  char label = 'A';
  for (const data::SceneObject& obj : scene.objects) {
    const int64_t cx = static_cast<int64_t>(obj.box.cx() * cols /
                                            static_cast<float>(scene.width));
    const int64_t cy = static_cast<int64_t>(obj.box.cy() * rows /
                                            static_cast<float>(scene.height));
    canvas[static_cast<size_t>(std::clamp<int64_t>(cy, 0, rows - 1))]
          [static_cast<size_t>(std::clamp<int64_t>(cx, 0, cols - 1))] = label;
    std::printf("  %c: %s %s %s\n", label, data::size_name(obj.size).c_str(),
                data::color_name(obj.color).c_str(),
                data::shape_name(obj.shape).c_str());
    ++label;
  }
  for (const std::string& row : canvas) std::printf("  %s\n", row.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t num_images = argc > 1 ? std::atoll(argv[1]) : 200;
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = data::DatasetConfig::synthref(num_images);
  dc.img_h = 48;
  dc.img_w = 72;
  const data::GroundingDataset dataset(dc, vocab);

  auto model = examples::load_or_train(dataset, vocab, /*epochs=*/8);
  // predict() manages its own eval mode now; the guard keeps the whole
  // session (including direct forward() calls, if any are added) in eval
  // mode and restores the previous mode on exit.
  nn::EvalModeGuard eval_mode(*model);

  Rng rng(31337);
  data::SceneSamplerConfig scfg = data::SceneSamplerConfig::refcoco_style();
  scfg.width = dc.img_w;
  scfg.height = dc.img_h;
  data::Scene scene = data::sample_scene(scfg, rng);
  std::printf("\nScene:\n");
  print_scene(scene);
  std::printf(
      "\nDescribe an object (e.g. \"red circle\", \"small square left\");\n"
      "\"next\" = new scene, \"quit\" = exit.\n");

  auto ground_and_report = [&](const std::string& query) {
    // Validate before touching the model: an empty or all-unknown query
    // would run the network on garbage tokens and hallucinate a box.
    const serve::ValidatedQuery validated = serve::validate_query(
        query, vocab, model->config().max_query_len);
    if (!validated.status.ok()) {
      if (validated.known_words == 0 && validated.unknown_words > 0) {
        std::printf(
            "I don't know any of those words (\"%s\") — try shapes, "
            "colours, and sizes like \"red circle\" or \"small square\".\n",
            validated.normalised.c_str());
      } else {
        std::printf("Please describe an object, e.g. \"red circle\".\n");
      }
      return;
    }
    if (validated.unknown_words > 0) {
      std::printf("(ignoring %lld unknown word%s)\n",
                  static_cast<long long>(validated.unknown_words),
                  validated.unknown_words == 1 ? "" : "s");
    }
    const Tensor image =
        data::render_scene(scene).reshape({1, 3, dc.img_h, dc.img_w});
    const vision::Box box = model->predict(image, validated.tokens)[0];
    // Which object did we hit?
    float best = 0.0f;
    const data::SceneObject* hit = nullptr;
    for (const data::SceneObject& obj : scene.objects) {
      const float overlap = vision::iou(box, obj.box);
      if (overlap > best) {
        best = overlap;
        hit = &obj;
      }
    }
    std::printf("-> box (%.0f, %.0f, %.0f, %.0f)", box.x, box.y, box.w,
                box.h);
    if (hit && best > 0.3f) {
      std::printf("  = the %s %s %s (IoU %.2f)\n",
                  data::size_name(hit->size).c_str(),
                  data::color_name(hit->color).c_str(),
                  data::shape_name(hit->shape).c_str(), best);
    } else {
      std::printf("  (no clear object match)\n");
    }
  };

  std::string line;
  bool interactive = false;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    interactive = true;
    if (line == "quit" || line == "exit") break;
    if (line == "next") {
      scene = data::sample_scene(scfg, rng);
      std::printf("\nScene:\n");
      print_scene(scene);
      continue;
    }
    if (line.empty()) continue;
    ground_and_report(line);
  }

  if (!interactive) {
    std::printf("(stdin closed — running scripted demo)\n");
    for (const char* q : {"red circle", "large square", "blue ring left",
                          "zzz qqq www", "..."}) {
      std::printf("> %s\n", q);
      ground_and_report(q);
    }
  }
  return 0;
}
