// Smart-gallery scenario — the "fancy applications on PCs and smart phones,
// like the virtual assistants" use-case from the paper's introduction.
//
// A photo album of synthetic scenes is indexed; a text search query is
// grounded in EVERY photo with one YOLLO forward pass each, and photos are
// ranked by the confidence of their best region. This exercises the public
// API in a retrieval loop and shows why one-stage latency matters: scoring
// an album of N photos costs N forward passes, not N x (proposals x
// matching).
//
//   ./examples/smart_gallery [num_images] [epochs] [album_size]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <numeric>

#include "core/trainer.h"
#include "example_util.h"
#include "data/renderer.h"
#include "eval/metrics.h"

using namespace yollo;

int main(int argc, char** argv) {
  const int64_t num_images = argc > 1 ? std::atoll(argv[1]) : 200;
  const int64_t epochs = argc > 2 ? std::atoll(argv[2]) : 10;
  const int64_t album_size = argc > 3 ? std::atoll(argv[3]) : 12;

  std::printf("== smart gallery: search your photos by description ==\n");
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = data::DatasetConfig::synthref(num_images);
  dc.img_h = 48;
  dc.img_w = 72;
  const data::GroundingDataset dataset(dc, vocab);

  auto model = examples::load_or_train(dataset, vocab, epochs);
  model->set_training(false);

  // Build an album of fresh scenes; remember which contain a red circle so
  // the search has a ground truth.
  Rng rng(4096);
  data::SceneSamplerConfig scfg = data::SceneSamplerConfig::refcoco_style();
  scfg.width = dc.img_w;
  scfg.height = dc.img_h;
  std::vector<data::Scene> album;
  std::vector<bool> has_match;
  for (int64_t i = 0; i < album_size; ++i) {
    const data::Scene scene = data::sample_scene(scfg, rng);
    bool match = false;
    for (const data::SceneObject& obj : scene.objects) {
      match = match || (obj.color == data::ColorName::kRed &&
                        obj.shape == data::ShapeType::kCircle);
    }
    album.push_back(scene);
    has_match.push_back(match);
  }

  const std::string query = "red circle";
  const auto tokens =
      data::pad_to(vocab.encode(query), model->config().max_query_len);
  std::printf("\nSearching %lld photos for \"%s\"...\n",
              static_cast<long long>(album_size), query.c_str());

  // Rank photos by best-anchor confidence.
  std::vector<float> scores(album.size());
  eval::Stopwatch watch;
  for (size_t i = 0; i < album.size(); ++i) {
    const Tensor image =
        data::render_scene(album[i]).reshape({1, 3, dc.img_h, dc.img_w});
    const auto out = model->forward(image, tokens);
    scores[i] = max_value(out.scores.value());
  }
  const double seconds = watch.elapsed_seconds();

  std::vector<size_t> order(album.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });

  int64_t matches_total = 0;
  for (bool m : has_match) matches_total += m;
  int64_t matches_in_top = 0;
  std::printf("\nRanked results (* = photo really contains a red circle):\n");
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const size_t i = order[rank];
    if (rank < static_cast<size_t>(matches_total)) {
      matches_in_top += has_match[i];
    }
    std::printf("  #%2zu  photo %2zu  confidence %7.3f %s\n", rank + 1, i,
                scores[i], has_match[i] ? "*" : "");
  }
  std::printf("\n%lld of the top-%lld results contain the queried object; "
              "%.0f ms per photo.\n",
              static_cast<long long>(matches_in_top),
              static_cast<long long>(matches_total),
              seconds * 1e3 / static_cast<double>(album.size()));

  // Save the top hit with its grounded box for inspection.
  const size_t best = order.front();
  Tensor best_img = data::render_scene(album[best]);
  const vision::Box box = model->predict(
      best_img.reshape({1, 3, dc.img_h, dc.img_w}), tokens)[0];
  data::draw_box_outline(best_img, box, data::Rgb{1.0f, 0.1f, 0.1f});
  data::write_ppm(best_img, "smart_gallery_top_hit.ppm");
  std::printf("Wrote smart_gallery_top_hit.ppm\n");
  return 0;
}
