// Quickstart: train a small YOLLO model on SynthRef and ground a few
// queries.
//
//   ./examples/quickstart [num_images] [epochs]
//
// Demonstrates the whole public API surface: dataset synthesis, model
// construction (with Word2Vec-initialised embeddings), end-to-end training,
// evaluation metrics, and single-query inference with an attention map.
#include <cstdio>
#include <cstdlib>

#include "core/trainer.h"
#include "data/renderer.h"
#include "eval/metrics.h"

using namespace yollo;

int main(int argc, char** argv) {
  const int64_t num_images = argc > 1 ? std::atoll(argv[1]) : 150;
  const int64_t epochs = argc > 2 ? std::atoll(argv[2]) : 6;

  std::printf("== YOLLO quickstart ==\n");
  std::printf("Building SynthRef with %lld images...\n",
              static_cast<long long>(num_images));
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(
      data::DatasetConfig::synthref(num_images), vocab);
  std::printf("  train %zu / val %zu / testA %zu / testB %zu samples\n",
              dataset.train().size(), dataset.val().size(),
              dataset.test_a().size(), dataset.test_b().size());

  core::BuildOptions options;
  auto model = core::build_yollo(dataset, vocab, options);
  std::printf("Model parameters: %lld\n",
              static_cast<long long>(model->parameter_count()));

  core::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.verbose = true;
  train_cfg.log_every = 10;
  std::printf("Training...\n");
  const core::TrainResult result =
      core::train_yollo(*model, dataset.train(), train_cfg);
  std::printf("Trained %lld steps in %.1f s (%.3f s/step)\n",
              static_cast<long long>(result.steps), result.seconds,
              result.seconds / static_cast<double>(result.steps));

  const auto val_preds = core::evaluate_yollo(*model, dataset.val());
  const eval::MetricRow metrics = eval::compute_metrics(val_preds);
  std::printf("Validation: ACC@0.5 %.1f%%  ACC@0.75 %.1f%%  mIoU %.3f\n",
              100.0 * metrics.acc50, 100.0 * metrics.acc75, metrics.miou);

  // Ground one query and dump the visualisation. predict() and the
  // tensor-taking attention_map() are self-contained grad-free eval-mode
  // entry points — no set_training() bookkeeping needed.
  const data::GroundingSample& sample = dataset.val().front();
  Tensor image = data::render_scene(sample.scene);
  const std::vector<int64_t> tokens =
      data::pad_to(sample.tokens, model->config().max_query_len);
  const Tensor batched =
      image.reshape({1, 3, sample.scene.height, sample.scene.width});
  const vision::Box pred = model->predict(batched, tokens)[0];

  std::printf("\nQuery: \"%s\"\n", sample.query_text.c_str());
  std::printf("Truth box: (%.0f, %.0f, %.0f, %.0f)\n", sample.target_box().x,
              sample.target_box().y, sample.target_box().w,
              sample.target_box().h);
  std::printf("Predicted: (%.0f, %.0f, %.0f, %.0f), IoU %.2f\n", pred.x,
              pred.y, pred.w, pred.h,
              vision::iou(pred, sample.target_box()));

  data::draw_box_outline(image, pred, data::Rgb{1.0f, 0.1f, 0.1f});
  data::write_ppm(image, "quickstart_prediction.ppm");
  data::write_pgm(model->attention_map(batched, tokens, 0),
                  "quickstart_attention.pgm");
  std::printf(
      "Wrote quickstart_prediction.ppm and quickstart_attention.pgm\n");
  return 0;
}
