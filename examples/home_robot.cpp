// Home-robot scenario — one of the applications the paper's introduction
// motivates ("human-computer interaction systems of new generation
// intelligence devices, such as home robots").
//
// A simulated tabletop scene is observed by the robot's camera (the
// renderer); the user issues a sequence of natural-language fetch commands;
// the robot grounds each command with YOLLO and reports the grasp point
// (box centre). Re-running the model per command demonstrates the paper's
// key property: grounding is a single forward pass, fast enough for
// interactive use.
//
//   ./examples/home_robot [num_images] [epochs]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/trainer.h"
#include "example_util.h"
#include "data/renderer.h"
#include "eval/metrics.h"

using namespace yollo;

int main(int argc, char** argv) {
  const int64_t num_images = argc > 1 ? std::atoll(argv[1]) : 200;
  const int64_t epochs = argc > 2 ? std::atoll(argv[2]) : 10;

  std::printf("== home robot: 'fetch me the ...' ==\n");
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = data::DatasetConfig::synthref(num_images);
  dc.img_h = 48;
  dc.img_w = 72;
  const data::GroundingDataset dataset(dc, vocab);

  auto model = examples::load_or_train(dataset, vocab, epochs);
  model->set_training(false);

  // The robot's tabletop: a fresh scene it has never seen.
  Rng rng(2026);
  data::SceneSamplerConfig scfg = data::SceneSamplerConfig::refcoco_style();
  scfg.width = dc.img_w;
  scfg.height = dc.img_h;
  const data::Scene table = data::sample_scene(scfg, rng);
  Tensor camera = data::render_scene(table);
  std::printf("\nTabletop contains %zu objects:\n", table.objects.size());
  for (const data::SceneObject& obj : table.objects) {
    std::printf("  - %s %s %s at (%.0f, %.0f)\n",
                data::size_name(obj.size).c_str(),
                data::color_name(obj.color).c_str(),
                data::shape_name(obj.shape).c_str(), obj.box.cx(),
                obj.box.cy());
  }

  // Issue one command per object, built from its own attributes.
  int correct = 0;
  eval::Stopwatch total;
  for (const data::SceneObject& obj : table.objects) {
    const std::string command = data::color_name(obj.color) + " " +
                                data::shape_name(obj.shape);
    const auto tokens =
        data::pad_to(vocab.encode(command), model->config().max_query_len);
    eval::Stopwatch per_command;
    const vision::Box grasp =
        model->predict(camera.reshape({1, 3, dc.img_h, dc.img_w}), tokens)[0];
    const double ms = per_command.elapsed_seconds() * 1e3;
    const bool hit = vision::iou(grasp, obj.box) > 0.5f;
    correct += hit;
    std::printf("robot <- \"fetch the %s\": grasp at (%.0f, %.0f) in %.0f ms %s\n",
                command.c_str(), grasp.cx(), grasp.cy(), ms,
                hit ? "[correct object]" : "[missed]");
  }
  std::printf("\nGrounded %d/%zu commands correctly; %.0f ms/command "
              "average (single forward pass, no proposal stage).\n",
              correct, table.objects.size(),
              total.elapsed_seconds() * 1e3 /
                  static_cast<double>(table.objects.size()));

  data::write_ppm(camera, "home_robot_tabletop.ppm");
  std::printf("Wrote home_robot_tabletop.ppm\n");
  return 0;
}
