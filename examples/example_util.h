// Shared helper for the example programs: obtain a trained YOLLO model,
// preferring the benchmark suite's cached checkpoint when one is present
// and compatible, and training a fresh model otherwise.
#pragma once

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "core/trainer.h"

namespace yollo::examples {

// Try to load `bench_cache/yollo_SynthRef.params`. The checkpoint's
// positional-embedding table fixes the query padding length, which may
// differ from `dataset`'s; probe a small range of lengths until the
// parameter shapes line up. Returns nullptr when no compatible checkpoint
// exists.
inline std::unique_ptr<core::YolloModel> try_load_cached(
    const data::GroundingDataset& dataset, const data::Vocab& vocab) {
  const std::string cached = "bench_cache/yollo_SynthRef.params";
  if (!std::filesystem::exists(cached)) return nullptr;
  for (int64_t len = 4; len <= 24; ++len) {
    core::BuildOptions options;
    options.pretrain_embeddings = false;  // weights come from the file
    options.config.max_query_len = len;
    options.config.img_h = dataset.config().img_h;
    options.config.img_w = dataset.config().img_w;
    Rng rng(options.config.seed);
    auto model = std::make_unique<core::YolloModel>(options.config,
                                                    vocab.size(), rng);
    try {
      nn::load_parameters(*model, cached);
      std::printf("Loaded trained model from %s (query length %lld)\n",
                  cached.c_str(), static_cast<long long>(len));
      return model;
    } catch (const std::exception&) {
      // Wrong padding length; try the next one.
    }
  }
  return nullptr;
}

// Cached model if compatible, else a freshly trained one.
inline std::unique_ptr<core::YolloModel> load_or_train(
    const data::GroundingDataset& dataset, const data::Vocab& vocab,
    int64_t epochs) {
  if (auto cached = try_load_cached(dataset, vocab)) return cached;
  core::BuildOptions options;
  auto model = core::build_yollo(dataset, vocab, options);
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 16;
  std::printf("Training the grounding model (%lld epochs)...\n",
              static_cast<long long>(epochs));
  core::train_yollo(*model, dataset.train(), tc);
  return model;
}

}  // namespace yollo::examples
